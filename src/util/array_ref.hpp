// Borrowed-or-owned flat array storage for the frozen artifact types.
//
// Every frozen structure in the store stack (CsrGraph, FlatLabeling,
// InvertedHubIndex, LabelFilter) is a handful of immutable SoA arrays. Until
// now each held `std::vector` members, which forces a serving restart to
// deserialize every artifact element by element even though the on-disk
// frozen image is byte-identical to the in-memory layout. `ArrayRef<T>`
// makes the storage mode a per-array runtime choice:
//
//   * owned    — wraps a std::vector<T>; the builder/assign paths mutate it
//                exactly as before (resize/assign/element writes), and the
//                cached data pointer re-syncs after every sizing call.
//   * borrowed — aliases a read-only external buffer (in practice a section
//                of a util::MmapFile'd frozen image). No copy is ever made;
//                the borrower's lifetime contract is external (the serving
//                snapshot keeps the mapping alive via shared_ptr).
//
// The hot-path read API (`data()`, `size()`, `operator[] const`, iteration)
// is branch-free in both modes: `data_`/`size_` are kept synced as an
// invariant, so query kernels compile to the same loads they issued against
// a plain vector. Mutation of a borrowed ref is a programming error and
// asserts (frozen artifacts are never edited in place; re-freezing goes
// through the owned path).
//
// Copy semantics follow the mode: copying an owned ref deep-copies the
// vector; copying a borrowed ref copies the alias (both refs then point at
// the same external bytes — correct, because borrowed storage is immutable
// and externally owned).
#pragma once

#include <cstddef>
#include <initializer_list>
#include <vector>

#include "util/check.hpp"

namespace lowtw::util {

template <typename T>
class ArrayRef {
 public:
  ArrayRef() = default;
  /// Owned: adopts the vector (implicit, so existing from_parts callers
  /// passing vectors compile unchanged).
  ArrayRef(std::vector<T> v) : owned_(std::move(v)) { sync_owned(); }
  ArrayRef(std::initializer_list<T> init) : owned_(init) { sync_owned(); }

  /// Borrowed: aliases `count` elements at `data`. The bytes must stay
  /// mapped and unchanged for the life of this ref and all its copies.
  static ArrayRef borrowed(const T* data, std::size_t count) {
    ArrayRef r;
    r.data_ = data;
    r.size_ = count;
    r.is_borrowed_ = true;
    return r;
  }

  ArrayRef(const ArrayRef& other)
      : owned_(other.owned_),
        data_(other.data_),
        size_(other.size_),
        is_borrowed_(other.is_borrowed_) {
    if (!is_borrowed_) sync_owned();
  }
  ArrayRef(ArrayRef&& other) noexcept
      : owned_(std::move(other.owned_)),
        data_(other.data_),
        size_(other.size_),
        is_borrowed_(other.is_borrowed_) {
    if (!is_borrowed_) sync_owned();
    other.reset_empty();
  }
  ArrayRef& operator=(const ArrayRef& other) {
    if (this != &other) {
      owned_ = other.owned_;
      is_borrowed_ = other.is_borrowed_;
      if (is_borrowed_) {
        data_ = other.data_;
        size_ = other.size_;
      } else {
        sync_owned();
      }
    }
    return *this;
  }
  ArrayRef& operator=(ArrayRef&& other) noexcept {
    if (this != &other) {
      owned_ = std::move(other.owned_);
      is_borrowed_ = other.is_borrowed_;
      if (is_borrowed_) {
        data_ = other.data_;
        size_ = other.size_;
      } else {
        sync_owned();
      }
      other.reset_empty();
    }
    return *this;
  }
  ArrayRef& operator=(std::vector<T> v) {
    owned_ = std::move(v);
    is_borrowed_ = false;
    sync_owned();
    return *this;
  }

  bool borrowed() const { return is_borrowed_; }
  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }
  const T* data() const { return data_; }
  const T& operator[](std::size_t i) const { return data_[i]; }
  const T& front() const { return data_[0]; }
  const T& back() const { return data_[size_ - 1]; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

  /// Deep copy into a plain vector (persistence writers, to_sidecar).
  std::vector<T> to_vector() const { return std::vector<T>(begin(), end()); }

  // --- owned-mode mutation (builder/assign paths) ----------------------------
  // Sizing calls on a borrowed ref drop the borrow and start from an empty
  // owned vector: every builder path overwrites its arrays wholesale, so
  // there is never content to migrate. Element writes on a borrowed ref are
  // a bug and assert.

  void resize(std::size_t n) {
    make_owned();
    owned_.resize(n);
    sync_owned();
  }
  void assign(std::size_t n, const T& value) {
    make_owned();
    owned_.assign(n, value);
    sync_owned();
  }
  void clear() {
    make_owned();
    owned_.clear();
    sync_owned();
  }
  void reserve(std::size_t n) {
    make_owned();
    owned_.reserve(n);
    sync_owned();
  }
  void push_back(const T& value) {
    make_owned();
    owned_.push_back(value);
    sync_owned();
  }

  /// Element write access. Deliberately not a non-const operator[]: that
  /// overload would also capture plain reads through non-const refs and trip
  /// the borrowed assert on read-only use; `mut` keeps every write explicit.
  T& mut(std::size_t i) {
    LOWTW_CHECK_MSG(!is_borrowed_, "ArrayRef: element write on borrowed storage");
    return owned_[i];
  }
  T* mutable_data() {
    LOWTW_CHECK_MSG(!is_borrowed_, "ArrayRef: mutable_data on borrowed storage");
    return owned_.data();
  }
  typename std::vector<T>::iterator mutable_begin() {
    LOWTW_CHECK_MSG(!is_borrowed_, "ArrayRef: mutable_begin on borrowed storage");
    return owned_.begin();
  }
  typename std::vector<T>::iterator mutable_end() {
    LOWTW_CHECK_MSG(!is_borrowed_, "ArrayRef: mutable_end on borrowed storage");
    return owned_.end();
  }

 private:
  void sync_owned() {
    data_ = owned_.data();
    size_ = owned_.size();
    is_borrowed_ = false;
  }
  void make_owned() {
    if (is_borrowed_) {
      owned_.clear();
      is_borrowed_ = false;
    }
  }
  void reset_empty() {
    owned_.clear();
    sync_owned();
  }

  std::vector<T> owned_;
  const T* data_ = nullptr;
  std::size_t size_ = 0;
  bool is_borrowed_ = false;
};

}  // namespace lowtw::util
