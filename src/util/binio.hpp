// Shared stream helpers for the LTWB binary artifact family (graph_io's
// graph kinds, label_io's labeling kind): the checked 16-byte header, POD
// and chunked-array IO, and a per-section FNV-1a checksum for the formats
// that carry one.
//
// The hardening contract every LTWB reader follows:
//   * the header is validated field by field (magic, version, kind, endian
//     probe) before any payload is touched;
//   * arrays are consumed in bounded chunks (≈1 MiB), so a corrupted element
//     count fails at EOF instead of provoking a giant upfront allocation;
//   * checksummed sections fold the bytes through FNV-1a as they stream and
//     compare against the stored digest at the section end, so silent bit
//     rot inside a structurally plausible payload is rejected too.
#pragma once

#include <algorithm>
#include <cstdint>
#include <istream>
#include <ostream>
#include <vector>

#include "util/check.hpp"

namespace lowtw::util::binio {

inline constexpr char kMagic[4] = {'L', 'T', 'W', 'B'};
/// Written natively and compared on read: a byte-swapped platform sees
/// 0x04030201 and fails the header check instead of decoding garbage.
inline constexpr std::uint32_t kEndianProbe = 0x01020304;
/// Chunk granularity for array IO: bounded buffering on the read side, and
/// bounded single-write requests on the write side (some streambufs degrade
/// on multi-GB writes).
inline constexpr std::size_t kChunkBytes = std::size_t{1} << 20;

/// Registry of LTWB payload kinds, shared so no two formats collide.
inline constexpr std::uint32_t kKindCsrGraph = 1;
inline constexpr std::uint32_t kKindWeightedDigraph = 2;
inline constexpr std::uint32_t kKindFlatLabeling = 3;
/// Kind 3 payload + the labeling::FilterSidecar sections (label_io).
inline constexpr std::uint32_t kKindFlatLabelingFiltered = 4;
/// Relocatable frozen image: one aligned arena holding every frozen
/// artifact as offset-addressed sections, mmap-loadable without
/// deserialization (persist/frozen_image).
inline constexpr std::uint32_t kKindFrozenImage = 5;

template <typename T>
void write_pod(std::ostream& os, const T& value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& is) {
  T value{};
  is.read(reinterpret_cast<char*>(&value), sizeof(T));
  LOWTW_CHECK_MSG(is.good(), "binary: truncated header");
  return value;
}

/// Incremental FNV-1a over a byte stream; both sides of a checksummed
/// section fold the same chunks through it.
class Fnv1a {
 public:
  void update(const void* data, std::size_t bytes) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < bytes; ++i) {
      hash_ ^= p[i];
      hash_ *= 0x100000001b3ULL;
    }
  }
  std::uint64_t digest() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ULL;
};

template <typename T>
void write_array(std::ostream& os, const T* data, std::size_t count,
                 Fnv1a* checksum = nullptr) {
  const std::size_t per_chunk =
      std::max<std::size_t>(1, kChunkBytes / sizeof(T));
  for (std::size_t i = 0; i < count; i += per_chunk) {
    const std::size_t run = std::min(per_chunk, count - i);
    os.write(reinterpret_cast<const char*>(data + i),
             static_cast<std::streamsize>(run * sizeof(T)));
    if (checksum != nullptr) checksum->update(data + i, run * sizeof(T));
  }
  LOWTW_CHECK_MSG(os.good(), "binary: write failed");
}

/// Appends `count` elements in bounded chunks; the vector grows with each
/// arrived chunk, never by the (untrusted) total upfront.
template <typename T>
void read_array(std::istream& is, std::size_t count, std::vector<T>& out,
                Fnv1a* checksum = nullptr) {
  out.clear();
  const std::size_t per_chunk =
      std::max<std::size_t>(1, kChunkBytes / sizeof(T));
  while (out.size() < count) {
    const std::size_t run = std::min(per_chunk, count - out.size());
    const std::size_t old = out.size();
    out.resize(old + run);
    is.read(reinterpret_cast<char*>(out.data() + old),
            static_cast<std::streamsize>(run * sizeof(T)));
    LOWTW_CHECK_MSG(is.gcount() ==
                        static_cast<std::streamsize>(run * sizeof(T)),
                    "binary: truncated array (wanted " << count
                        << " elements, stream ended at " << old << ")");
    if (checksum != nullptr) checksum->update(out.data() + old, run * sizeof(T));
  }
}

/// Checksummed section: the array followed by its FNV-1a digest.
template <typename T>
void write_array_checked(std::ostream& os, const T* data, std::size_t count) {
  Fnv1a sum;
  write_array(os, data, count, &sum);
  write_pod(os, sum.digest());
}

template <typename T>
void read_array_checked(std::istream& is, std::size_t count,
                        std::vector<T>& out, const char* section) {
  Fnv1a sum;
  read_array(is, count, out, &sum);
  const auto stored = read_pod<std::uint64_t>(is);
  LOWTW_CHECK_MSG(stored == sum.digest(),
                  "binary: checksum mismatch in section '" << section << "'");
}

inline void write_header(std::ostream& os, std::uint32_t kind,
                         std::uint32_t version) {
  os.write(kMagic, sizeof(kMagic));
  write_pod(os, version);
  write_pod(os, kind);
  write_pod(os, kEndianProbe);
}

/// Validates magic / version / kind / endianness; throws CheckFailure on any
/// mismatch before a single payload byte is consumed.
inline void read_header(std::istream& is, std::uint32_t want_kind,
                        std::uint32_t want_version) {
  char magic[4] = {};
  is.read(magic, sizeof(magic));
  LOWTW_CHECK_MSG(is.good() && std::equal(magic, magic + 4, kMagic),
                  "binary: bad magic");
  const auto version = read_pod<std::uint32_t>(is);
  LOWTW_CHECK_MSG(version == want_version,
                  "binary: unsupported version " << version);
  const auto kind = read_pod<std::uint32_t>(is);
  LOWTW_CHECK_MSG(kind == want_kind,
                  "binary: kind " << kind << ", expected " << want_kind);
  const auto endian = read_pod<std::uint32_t>(is);
  LOWTW_CHECK_MSG(endian == kEndianProbe, "binary: endianness mismatch");
}

}  // namespace lowtw::util::binio
