// Small integer/real math helpers shared across modules.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace lowtw::util {

/// ceil(a / b) for positive integers.
constexpr std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

/// floor(log2(x)) for x >= 1.
constexpr int floor_log2(std::uint64_t x) {
  int r = 0;
  while (x > 1) {
    x >>= 1;
    ++r;
  }
  return r;
}

/// ceil(log2(x)) for x >= 1.
constexpr int ceil_log2(std::uint64_t x) {
  return x <= 1 ? 0 : floor_log2(x - 1) + 1;
}

/// log2(max(n, 2)) as a double; the "log n" that appears in round bounds.
/// Clamped below at 1 so that model charges never vanish on tiny graphs.
inline double log2n(std::int64_t n) {
  return std::max(1.0, std::log2(static_cast<double>(std::max<std::int64_t>(n, 2))));
}

/// Integer power with saturation at INT64_MAX / 4 (enough for round charges).
constexpr std::int64_t ipow_sat(std::int64_t base, int exp) {
  constexpr std::int64_t kCap = INT64_MAX / 4;
  std::int64_t r = 1;
  for (int i = 0; i < exp; ++i) {
    if (r > kCap / std::max<std::int64_t>(base, 1)) return kCap;
    r *= base;
  }
  return r;
}

}  // namespace lowtw::util
