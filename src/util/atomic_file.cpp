#include "util/atomic_file.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "util/check.hpp"

namespace lowtw::util {

namespace detail {

int real_fsync(int fd, const std::string& /*path*/) { return ::fsync(fd); }

FsyncFn fsync_hook = &real_fsync;

}  // namespace detail

namespace {

// Opens `path` read-only, runs the fsync hook on it, closes. Returns false
// (errno set) when the open or the sync fails. Directories need O_RDONLY +
// fsync — there is no portable "sync just this dirent" call.
bool sync_path(const std::string& path, int open_flags) {
  const int fd = ::open(path.c_str(), open_flags);
  if (fd < 0) return false;
  const int rc = detail::fsync_hook(fd, path);
  const int saved = errno;
  ::close(fd);
  errno = saved;
  return rc == 0;
}

std::string parent_dir(const std::string& path) {
  const std::filesystem::path parent = std::filesystem::path(path).parent_path();
  return parent.empty() ? std::string(".") : parent.string();
}

}  // namespace

void atomic_write_file(const std::string& path,
                       const std::function<void(std::ostream&)>& write) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    LOWTW_CHECK_MSG(os.is_open(),
                    "atomic_write_file: cannot open temp '" << tmp << "'");
    try {
      write(os);
      os.flush();
    } catch (...) {
      os.close();
      std::remove(tmp.c_str());
      throw;
    }
    if (!os.good()) {
      os.close();
      std::remove(tmp.c_str());
      LOWTW_CHECK_MSG(false, "atomic_write_file: write to '" << tmp
                                 << "' failed; destination untouched");
    }
  }
  // Durability step 1: the temp file's *data* must be on stable storage
  // before the rename makes it reachable — otherwise a power cut can leave
  // the destination name pointing at unwritten blocks.
  if (!sync_path(tmp, O_RDONLY)) {
    const int err = errno;
    std::remove(tmp.c_str());
    LOWTW_CHECK_MSG(false, "atomic_write_file: fsync '"
                               << tmp << "' failed: " << std::strerror(err)
                               << "; destination untouched");
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::remove(tmp.c_str());
    LOWTW_CHECK_MSG(false, "atomic_write_file: rename '" << tmp << "' -> '"
                               << path << "' failed: " << ec.message());
  }
  // Durability step 2: the rename is a directory mutation; fsync the parent
  // so the new entry itself survives power loss. The swap already happened,
  // so failure here is reported without touching the (complete) new file.
  if (!sync_path(parent_dir(path), O_RDONLY | O_DIRECTORY)) {
    const int err = errno;
    LOWTW_CHECK_MSG(false, "atomic_write_file: parent fsync for '"
                               << path << "' failed: " << std::strerror(err)
                               << "; new content installed but not yet "
                                  "guaranteed durable");
  }
}

}  // namespace lowtw::util
