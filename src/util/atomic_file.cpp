#include "util/atomic_file.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "util/check.hpp"

namespace lowtw::util {

void atomic_write_file(const std::string& path,
                       const std::function<void(std::ostream&)>& write) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    LOWTW_CHECK_MSG(os.is_open(),
                    "atomic_write_file: cannot open temp '" << tmp << "'");
    try {
      write(os);
      os.flush();
    } catch (...) {
      os.close();
      std::remove(tmp.c_str());
      throw;
    }
    if (!os.good()) {
      os.close();
      std::remove(tmp.c_str());
      LOWTW_CHECK_MSG(false, "atomic_write_file: write to '" << tmp
                                 << "' failed; destination untouched");
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::remove(tmp.c_str());
    LOWTW_CHECK_MSG(false, "atomic_write_file: rename '" << tmp << "' -> '"
                               << path << "' failed: " << ec.message());
  }
}

}  // namespace lowtw::util
