#include "labeling/label_filter.hpp"

#include <algorithm>

#include "exec/worker_local.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace lowtw::labeling {

using graph::kInfinity;
using graph::VertexId;
using graph::Weight;

namespace {

/// Scalar postings relax over one (hub, part) segment — the same fold as
/// the inverted index's kernel (min is order-invariant, so segment order
/// preserves bit-exactness against the whole-run relax).
void relax_segment(const VertexId* pv, const Weight* w, std::size_t m,
                   Weight leg, Weight* out) {
  for (std::size_t j = 0; j < m; ++j) {
    const Weight cand = leg + w[j];
    if (cand < out[pv[j]]) out[pv[j]] = cand;
  }
}

/// Per-worker row scratch for the TaskPool-parallel filter build.
struct RowScratch {
  std::vector<Weight> dist;
  std::vector<Weight> dist_to;
};

}  // namespace

LabelFilter LabelFilter::build(const FlatLabeling& labels,
                               const InvertedHubIndex& index,
                               std::vector<std::int32_t> part_of,
                               int num_parts, exec::TaskPool* pool) {
  LOWTW_CHECK_MSG(index.matches(labels),
                  "label filter: index is stale for the store");
  LOWTW_CHECK_MSG(num_parts >= 1, "label filter: num_parts must be positive");
  const int n = labels.num_vertices();
  LOWTW_CHECK_MSG(part_of.size() == static_cast<std::size_t>(n),
                  "label filter: partition size " << part_of.size()
                                                  << " != n " << n);
  for (const std::int32_t p : part_of) {
    LOWTW_CHECK_MSG(p >= 0 && p < num_parts,
                    "label filter: part " << p << " out of range");
  }

  LabelFilter f;
  f.num_parts_ = num_parts;
  f.words_per_entry_ =
      (static_cast<std::size_t>(num_parts) + 63) / 64;
  f.part_of_ = std::move(part_of);
  const std::size_t total = labels.num_entries();
  f.fwd_flags_.assign(total * f.words_per_entry_, 0);
  f.bwd_flags_.assign(total * f.words_per_entry_, 0);
  // -1 = the entry never wins: every (non-negative) leg exceeds it, so the
  // bound check alone retires direction-dead entries.
  f.fwd_bound_.assign(total, -1);
  f.bwd_bound_.assign(total, -1);

  // One exact one-vs-all row per source gives the winner set of every entry
  // of that source: entry (u, h) wins target v iff its candidate equals the
  // decoded distance (ties included, so some winner always stays flagged).
  // Each task writes only its own source's entry slots — disjoint writes,
  // bit-identical at any worker count.
  const std::size_t wpe = f.words_per_entry_;
  auto flag_source = [&](VertexId u, RowScratch& rows) {
    rows.dist.resize(static_cast<std::size_t>(n));
    rows.dist_to.resize(static_cast<std::size_t>(n));
    index.one_vs_all(u, rows.dist, rows.dist_to);
    auto hubs = labels.hubs(u);
    auto to = labels.to_hub(u);
    auto from = labels.from_hub(u);
    const std::size_t entry_base = labels.offset(u);
    for (std::size_t i = 0; i < hubs.size(); ++i) {
      const VertexId h = hubs[i];
      auto pv = index.vertices(h);
      auto pto = index.to_hub(h);
      auto pfrom = index.from_hub(h);
      const std::size_t e = entry_base + i;
      std::uint64_t* fw = f.fwd_flags_.mutable_data() + e * wpe;
      std::uint64_t* bw = f.bwd_flags_.mutable_data() + e * wpe;
      if (to[i] < kInfinity) {
        Weight& fwd_bound = f.fwd_bound_.mut(e);
        for (std::size_t j = 0; j < pv.size(); ++j) {
          const Weight d = rows.dist[pv[j]];
          if (d < kInfinity && to[i] + pfrom[j] == d) {
            const std::int32_t p = f.part_of_[pv[j]];
            fw[p >> 6] |= std::uint64_t{1} << (p & 63);
            if (pfrom[j] > fwd_bound) fwd_bound = pfrom[j];
          }
        }
      }
      if (from[i] < kInfinity) {
        Weight& bwd_bound = f.bwd_bound_.mut(e);
        for (std::size_t j = 0; j < pv.size(); ++j) {
          const Weight d = rows.dist_to[pv[j]];
          if (d < kInfinity && from[i] + pto[j] == d) {
            const std::int32_t p = f.part_of_[pv[j]];
            bw[p >> 6] |= std::uint64_t{1} << (p & 63);
            if (pto[j] > bwd_bound) bwd_bound = pto[j];
          }
        }
      }
    }
  };
  if (pool != nullptr && n > 1) {
    exec::WorkerLocal<RowScratch> rows(*pool);
    pool->run(n, [&](int u, int worker) {
      flag_source(static_cast<VertexId>(u), rows[worker]);
    });
  } else {
    RowScratch rows;
    for (VertexId u = 0; u < n; ++u) flag_source(u, rows);
  }

  f.derive_part_major(index);
  f.source_ = &labels;
  f.source_generation_ = labels.generation();
  return f;
}

void LabelFilter::derive_part_major(const InvertedHubIndex& index) {
  const auto hub_bound = static_cast<std::size_t>(index.hub_bound());
  const auto parts = static_cast<std::size_t>(num_parts_);
  // Counting-sort each postings run into part segments; scanning runs in
  // posting order keeps every segment vertex-ascending.
  seg_offsets_.assign(hub_bound * parts + 1, 0);
  for (std::size_t h = 0; h < hub_bound; ++h) {
    for (const VertexId v : index.vertices(static_cast<VertexId>(h))) {
      ++seg_offsets_.mut(h * parts + static_cast<std::size_t>(part_of_[v]) + 1);
    }
  }
  for (std::size_t s = 0; s + 1 < seg_offsets_.size(); ++s) {
    seg_offsets_.mut(s + 1) += seg_offsets_[s];
  }
  const std::size_t total = index.num_postings();
  LOWTW_CHECK(seg_offsets_.back() == total);
  seg_vertices_.resize(total);
  seg_to_hub_.resize(total);
  seg_from_hub_.resize(total);
  std::vector<std::size_t> cursor(seg_offsets_.begin(),
                                  seg_offsets_.end() - 1);
  for (std::size_t h = 0; h < hub_bound; ++h) {
    auto pv = index.vertices(static_cast<VertexId>(h));
    auto pto = index.to_hub(static_cast<VertexId>(h));
    auto pfrom = index.from_hub(static_cast<VertexId>(h));
    for (std::size_t j = 0; j < pv.size(); ++j) {
      const std::size_t pos =
          cursor[h * parts + static_cast<std::size_t>(part_of_[pv[j]])]++;
      seg_vertices_.mut(pos) = pv[j];
      seg_to_hub_.mut(pos) = pto[j];
      seg_from_hub_.mut(pos) = pfrom[j];
    }
  }
}

LabelFilter LabelFilter::from_sidecar(const FlatLabeling& labels,
                                      const InvertedHubIndex& index,
                                      FilterSidecar sidecar) {
  LOWTW_CHECK_MSG(index.matches(labels),
                  "label filter: index is stale for the store");
  LOWTW_CHECK_MSG(sidecar.num_parts >= 1,
                  "label filter sidecar: bad part count "
                      << sidecar.num_parts);
  const auto n = static_cast<std::size_t>(labels.num_vertices());
  const std::size_t total = labels.num_entries();
  const std::size_t wpe =
      (static_cast<std::size_t>(sidecar.num_parts) + 63) / 64;
  LOWTW_CHECK_MSG(sidecar.part_of.size() == n,
                  "label filter sidecar: partition size disagrees with store");
  LOWTW_CHECK_MSG(sidecar.fwd_flags.size() == total * wpe &&
                      sidecar.bwd_flags.size() == total * wpe,
                  "label filter sidecar: flag section size disagrees");
  LOWTW_CHECK_MSG(sidecar.fwd_bound.size() == total &&
                      sidecar.bwd_bound.size() == total,
                  "label filter sidecar: bound section size disagrees");
  for (const std::int32_t p : sidecar.part_of) {
    LOWTW_CHECK_MSG(p >= 0 && p < sidecar.num_parts,
                    "label filter sidecar: part " << p << " out of range");
  }
  LabelFilter f;
  f.num_parts_ = sidecar.num_parts;
  f.words_per_entry_ = wpe;
  f.part_of_ = std::move(sidecar.part_of);
  f.fwd_flags_ = std::move(sidecar.fwd_flags);
  f.bwd_flags_ = std::move(sidecar.bwd_flags);
  f.fwd_bound_ = std::move(sidecar.fwd_bound);
  f.bwd_bound_ = std::move(sidecar.bwd_bound);
  f.derive_part_major(index);
  f.source_ = &labels;
  f.source_generation_ = labels.generation();
  return f;
}

FilterSidecar LabelFilter::to_sidecar() const {
  FilterSidecar out;
  out.num_parts = num_parts_;
  out.part_of = part_of_.to_vector();
  out.fwd_flags = fwd_flags_.to_vector();
  out.bwd_flags = bwd_flags_.to_vector();
  out.fwd_bound = fwd_bound_.to_vector();
  out.bwd_bound = bwd_bound_.to_vector();
  return out;
}

LabelFilter LabelFilter::from_image_parts(
    const FlatLabeling& labels, std::int32_t num_parts,
    util::ArrayRef<std::int32_t> part_of,
    util::ArrayRef<std::uint64_t> fwd_flags,
    util::ArrayRef<std::uint64_t> bwd_flags,
    util::ArrayRef<Weight> fwd_bound, util::ArrayRef<Weight> bwd_bound,
    util::ArrayRef<std::size_t> seg_offsets,
    util::ArrayRef<VertexId> seg_vertices,
    util::ArrayRef<Weight> seg_to_hub,
    util::ArrayRef<Weight> seg_from_hub) {
  LOWTW_CHECK_MSG(num_parts >= 1,
                  "label filter image: bad part count " << num_parts);
  const int n = labels.num_vertices();
  const std::size_t total = labels.num_entries();
  const std::size_t wpe = (static_cast<std::size_t>(num_parts) + 63) / 64;
  LOWTW_CHECK_MSG(part_of.size() == static_cast<std::size_t>(n),
                  "label filter image: partition size disagrees with store");
  LOWTW_CHECK_MSG(fwd_flags.size() == total * wpe &&
                      bwd_flags.size() == total * wpe,
                  "label filter image: flag section size disagrees");
  LOWTW_CHECK_MSG(fwd_bound.size() == total && bwd_bound.size() == total,
                  "label filter image: bound section size disagrees");
  for (const std::int32_t p : part_of) {
    LOWTW_CHECK_MSG(p >= 0 && p < num_parts,
                    "label filter image: part " << p << " out of range");
  }
  const auto hub_bound = static_cast<std::size_t>(labels.hub_bound());
  const auto parts = static_cast<std::size_t>(num_parts);
  LOWTW_CHECK_MSG(seg_offsets.size() == hub_bound * parts + 1,
                  "label filter image: segment table does not span "
                  "hub_bound x parts");
  LOWTW_CHECK_MSG(seg_offsets.front() == 0 && seg_offsets.back() == total,
                  "label filter image: segment totals disagree with store");
  LOWTW_CHECK_MSG(seg_vertices.size() == total &&
                      seg_to_hub.size() == total &&
                      seg_from_hub.size() == total,
                  "label filter image: segment array length mismatch");
  for (std::size_t s = 0; s + 1 < seg_offsets.size(); ++s) {
    LOWTW_CHECK_MSG(seg_offsets[s] <= seg_offsets[s + 1],
                    "label filter image: segment offsets not monotone");
    for (std::size_t i = seg_offsets[s]; i < seg_offsets[s + 1]; ++i) {
      LOWTW_CHECK_MSG(seg_vertices[i] >= 0 && seg_vertices[i] < n,
                      "label filter image: segment vertex out of range");
      LOWTW_CHECK_MSG(i == seg_offsets[s] ||
                          seg_vertices[i - 1] < seg_vertices[i],
                      "label filter image: segment not vertex-ascending");
    }
  }
  LabelFilter f;
  f.num_parts_ = num_parts;
  f.words_per_entry_ = wpe;
  f.part_of_ = std::move(part_of);
  f.fwd_flags_ = std::move(fwd_flags);
  f.bwd_flags_ = std::move(bwd_flags);
  f.fwd_bound_ = std::move(fwd_bound);
  f.bwd_bound_ = std::move(bwd_bound);
  f.seg_offsets_ = std::move(seg_offsets);
  f.seg_vertices_ = std::move(seg_vertices);
  f.seg_to_hub_ = std::move(seg_to_hub);
  f.seg_from_hub_ = std::move(seg_from_hub);
  f.source_ = &labels;
  f.source_generation_ = labels.generation();
  return f;
}

Weight LabelFilter::decode(VertexId u, VertexId v,
                           PruneCounters* counters) const {
  auto hu = source_->hubs(u);
  auto hv = source_->hubs(v);
  auto tu = source_->to_hub(u);
  auto fv = source_->from_hub(v);
  const std::size_t bu = source_->offset(u);
  const std::size_t bv = source_->offset(v);
  const std::int32_t pu = part_of_[u];
  const std::int32_t pv = part_of_[v];
  Weight best = kInfinity;
  std::uint64_t touched = 0;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < hu.size() && j < hv.size()) {
    if (hu[i] < hv[j]) {
      ++i;
    } else if (hu[i] > hv[j]) {
      ++j;
    } else {
      // A match survives only if both entries can still win a shortest
      // u → v path: u's entry must reach v's part (fwd flag), v's entry
      // must be reachable from u's part (bwd flag), and neither leg may
      // exceed its entry's recorded winning-leg bound. Every winning match
      // passes all four (it is its own witness), so the min is preserved
      // exactly; everything skipped is strictly worse than dec(u, v).
      const std::size_t eu = bu + i;
      const std::size_t ev = bv + j;
      if (fwd_flag(eu, pv) && bwd_flag(ev, pu) && fv[j] <= fwd_bound_[eu] &&
          tu[i] <= bwd_bound_[ev]) {
        ++touched;
        const Weight cand = tu[i] + fv[j];
        if (cand < best) best = cand;
      }
      ++i;
      ++j;
    }
  }
  if (counters != nullptr) counters->entries_touched += touched;
  return best;
}

void LabelFilter::one_vs_all(VertexId source, std::span<Weight> out_dist,
                             std::span<Weight> out_dist_to,
                             PruneCounters* counters) const {
  LOWTW_CHECK_MSG(source_ != nullptr &&
                      source_generation_ == source_->generation(),
                  "filtered one_vs_all on a stale or empty filter");
  const auto n = static_cast<std::size_t>(source_->num_vertices());
  LOWTW_CHECK(out_dist.size() == n);
  LOWTW_CHECK(out_dist_to.size() == n);
  std::fill(out_dist.begin(), out_dist.end(), kInfinity);
  std::fill(out_dist_to.begin(), out_dist_to.end(), kInfinity);

  auto hubs = source_->hubs(source);
  auto to = source_->to_hub(source);
  auto from = source_->from_hub(source);
  const std::size_t entry_base = source_->offset(source);
  const auto parts = static_cast<std::size_t>(num_parts_);
  std::uint64_t touched = 0;
  std::uint64_t skipped = 0;
  for (std::size_t i = 0; i < hubs.size(); ++i) {
    const std::size_t seg_base = static_cast<std::size_t>(hubs[i]) * parts;
    const std::size_t e = entry_base + i;
    const std::uint64_t* fw = fwd_flags_.data() + e * words_per_entry_;
    const std::uint64_t* bw = bwd_flags_.data() + e * words_per_entry_;
    // Only the flagged (hub, part) segments can hold a winner for this
    // entry; clear-flag segments are skipped whole. Infinite legs skip the
    // run like the unfiltered kernel.
    if (to[i] < kInfinity) {
      for (std::size_t p = 0; p < parts; ++p) {
        const std::size_t sb = seg_offsets_[seg_base + p];
        const std::size_t se = seg_offsets_[seg_base + p + 1];
        if (sb == se) continue;
        if (((fw[p >> 6] >> (p & 63)) & 1) == 0) {
          ++skipped;
          continue;
        }
        relax_segment(seg_vertices_.data() + sb, seg_from_hub_.data() + sb,
                      se - sb, to[i], out_dist.data());
        touched += se - sb;
      }
    }
    if (from[i] < kInfinity) {
      for (std::size_t p = 0; p < parts; ++p) {
        const std::size_t sb = seg_offsets_[seg_base + p];
        const std::size_t se = seg_offsets_[seg_base + p + 1];
        if (sb == se) continue;
        if (((bw[p >> 6] >> (p & 63)) & 1) == 0) {
          ++skipped;
          continue;
        }
        relax_segment(seg_vertices_.data() + sb, seg_to_hub_.data() + sb,
                      se - sb, from[i], out_dist_to.data());
        touched += se - sb;
      }
    }
  }
  if (counters != nullptr) {
    counters->entries_touched += touched;
    counters->postings_runs_skipped += skipped;
  }
}

std::vector<std::int32_t> partition_bfs(const graph::WeightedDigraph& g,
                                        int num_parts, std::uint64_t seed) {
  LOWTW_CHECK_MSG(num_parts >= 1, "partition_bfs: num_parts must be positive");
  const int n = g.num_vertices();
  std::vector<std::int32_t> part(static_cast<std::size_t>(n), -1);
  if (n == 0) return part;
  const util::Rng base(seed);
  const int roots = std::min(num_parts, n);
  std::vector<std::vector<VertexId>> frontier(
      static_cast<std::size_t>(num_parts));
  std::vector<std::size_t> head(static_cast<std::size_t>(num_parts), 0);
  for (std::int32_t p = 0; p < roots; ++p) {
    // Each part draws its root from its own fork stream; collisions probe
    // linearly to the next unclaimed vertex — a pure function of
    // (seed, num_parts, n).
    auto root = static_cast<VertexId>(
        base.fork(static_cast<std::uint64_t>(p))
            .next_below(static_cast<std::uint64_t>(n)));
    while (part[root] != -1) root = (root + 1) % n;
    part[root] = p;
    frontier[static_cast<std::size_t>(p)].push_back(root);
  }
  // Round-robin wavefronts: each part claims one hop of unclaimed
  // neighbours per round (undirected view — both arc directions), so parts
  // grow at matched speed regardless of root placement.
  bool grew = true;
  while (grew) {
    grew = false;
    for (std::int32_t p = 0; p < num_parts; ++p) {
      auto& q = frontier[static_cast<std::size_t>(p)];
      std::size_t& h = head[static_cast<std::size_t>(p)];
      const std::size_t level_end = q.size();
      for (; h < level_end; ++h) {
        const VertexId v = q[h];
        for (const graph::EdgeId e : g.out_arcs(v)) {
          const VertexId w = g.arc(e).head;
          if (part[w] == -1) {
            part[w] = p;
            q.push_back(w);
          }
        }
        for (const graph::EdgeId e : g.in_arcs(v)) {
          const VertexId w = g.arc(e).tail;
          if (part[w] == -1) {
            part[w] = p;
            q.push_back(w);
          }
        }
      }
      if (q.size() > level_end) grew = true;
    }
  }
  // Disconnected leftovers (none for the connected instances this runs on):
  // deterministic spread by id.
  for (std::size_t v = 0; v < part.size(); ++v) {
    if (part[v] == -1) {
      part[v] = static_cast<std::int32_t>(v % static_cast<std::size_t>(num_parts));
    }
  }
  return part;
}

}  // namespace lowtw::labeling
