#include "labeling/label_io.hpp"

#include <algorithm>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/atomic_file.hpp"
#include "util/binio.hpp"
#include "util/check.hpp"

namespace lowtw::labeling::io {

using graph::kInfinity;
using graph::Weight;

namespace {

void write_weight(std::ostream& os, Weight w) {
  if (w >= kInfinity) {
    os << "inf";
  } else {
    os << w;
  }
}

Weight read_weight(std::istream& is) {
  std::string tok;
  is >> tok;
  LOWTW_CHECK_MSG(!tok.empty(), "truncated labeling stream");
  if (tok == "inf") return kInfinity;
  return std::stoll(tok);
}

}  // namespace

void write_labeling(std::ostream& os, const DistanceLabeling& labeling) {
  os << "labeling " << labeling.labels.size() << "\n";
  for (const Label& l : labeling.labels) {
    os << "l " << l.owner << " " << l.entries.size() << "\n";
    for (const LabelEntry& e : l.entries) {
      os << "e " << e.hub << " ";
      write_weight(os, e.to_hub);
      os << " ";
      write_weight(os, e.from_hub);
      os << "\n";
    }
  }
}

void write_labeling(std::ostream& os, const FlatLabeling& labeling) {
  const int n = labeling.num_vertices();
  os << "labeling " << n << "\n";
  for (graph::VertexId v = 0; v < n; ++v) {
    auto hubs = labeling.hubs(v);
    auto to = labeling.to_hub(v);
    auto from = labeling.from_hub(v);
    os << "l " << v << " " << hubs.size() << "\n";
    for (std::size_t i = 0; i < hubs.size(); ++i) {
      os << "e " << hubs[i] << " ";
      write_weight(os, to[i]);
      os << " ";
      write_weight(os, from[i]);
      os << "\n";
    }
  }
}

FlatLabeling read_flat_labeling(std::istream& is) {
  std::string tag;
  LOWTW_CHECK_MSG(is >> tag && tag == "labeling", "missing labeling header");
  std::size_t n = 0;
  is >> n;
  std::vector<std::size_t> offsets;
  offsets.reserve(n + 1);
  offsets.push_back(0);
  std::vector<graph::VertexId> hub_ids;
  std::vector<Weight> to_hub;
  std::vector<Weight> from_hub;
  for (std::size_t i = 0; i < n; ++i) {
    LOWTW_CHECK_MSG(is >> tag && tag == "l", "expected label record");
    graph::VertexId owner = graph::kNoVertex;
    std::size_t k = 0;
    is >> owner >> k;
    for (std::size_t j = 0; j < k; ++j) {
      LOWTW_CHECK_MSG(is >> tag && tag == "e", "expected entry record");
      graph::VertexId hub = graph::kNoVertex;
      is >> hub;
      hub_ids.push_back(hub);
      to_hub.push_back(read_weight(is));
      from_hub.push_back(read_weight(is));
    }
    offsets.push_back(hub_ids.size());
  }
  // from_parts re-checks the per-span hub sort order (the "entries not
  // sorted by hub" guard of the AoS reader).
  return FlatLabeling::from_parts(std::move(offsets), std::move(hub_ids),
                                  std::move(to_hub), std::move(from_hub));
}

DistanceLabeling read_labeling(std::istream& is) {
  DistanceLabeling out;
  std::string tag;
  LOWTW_CHECK_MSG(is >> tag && tag == "labeling", "missing labeling header");
  std::size_t n = 0;
  is >> n;
  out.labels.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    LOWTW_CHECK_MSG(is >> tag && tag == "l", "expected label record");
    Label& l = out.labels[i];
    std::size_t k = 0;
    is >> l.owner >> k;
    l.entries.resize(k);
    graph::VertexId prev_hub = graph::kNoVertex;
    for (std::size_t j = 0; j < k; ++j) {
      LOWTW_CHECK_MSG(is >> tag && tag == "e", "expected entry record");
      LabelEntry& e = l.entries[j];
      is >> e.hub;
      e.to_hub = read_weight(is);
      e.from_hub = read_weight(is);
      LOWTW_CHECK_MSG(e.hub > prev_hub, "entries not sorted by hub");
      prev_hub = e.hub;
    }
  }
  return out;
}

namespace {

namespace binio = util::binio;

/// Kind 3 files stay at version 1 forever (every pre-existing artifact keeps
/// loading); the filtered kind 4 is the version-2 format.
constexpr std::uint32_t kLabelingBinaryVersion = 1;
constexpr std::uint32_t kFilteredBinaryVersion = 2;

/// The store sections shared by kind 3 and kind 4 (everything after the
/// 16-byte header).
void write_flat_payload(std::ostream& os, const FlatLabeling& labeling) {
  const int n = labeling.num_vertices();
  const std::uint64_t total = labeling.num_entries();
  binio::write_pod(os, static_cast<std::int32_t>(n));
  binio::write_pod(os, total);
  // The sections stream straight out of the frozen SoA arrays, one
  // checksummed run each. The offset table is re-derived from the spans
  // (FlatLabeling does not expose its arrays); O(n) and allocation-local.
  std::vector<std::uint64_t> offsets(static_cast<std::size_t>(n) + 1, 0);
  for (graph::VertexId v = 0; v < n; ++v) {
    offsets[static_cast<std::size_t>(v) + 1] =
        offsets[v] + labeling.entries(v);
  }
  binio::write_array_checked(os, offsets.data(), offsets.size());
  binio::Fnv1a hub_sum;
  binio::Fnv1a to_sum;
  binio::Fnv1a from_sum;
  for (graph::VertexId v = 0; v < n; ++v) {
    auto hubs = labeling.hubs(v);
    binio::write_array(os, hubs.data(), hubs.size(), &hub_sum);
  }
  binio::write_pod(os, hub_sum.digest());
  for (graph::VertexId v = 0; v < n; ++v) {
    auto to = labeling.to_hub(v);
    binio::write_array(os, to.data(), to.size(), &to_sum);
  }
  binio::write_pod(os, to_sum.digest());
  for (graph::VertexId v = 0; v < n; ++v) {
    auto from = labeling.from_hub(v);
    binio::write_array(os, from.data(), from.size(), &from_sum);
  }
  binio::write_pod(os, from_sum.digest());
}

FlatLabeling read_flat_payload(std::istream& is) {
  const auto n = binio::read_pod<std::int32_t>(is);
  const auto total = binio::read_pod<std::uint64_t>(is);
  LOWTW_CHECK_MSG(n >= 0, "labeling binary: negative vertex count");
  // The offset table arrives first: n-proportional payload backing the
  // header's vertex count (a lying header dies at EOF in the chunked read),
  // and its end entry must agree with the header's total before the three
  // total-sized sections are read.
  std::vector<std::uint64_t> offsets64;
  binio::read_array_checked(is, static_cast<std::size_t>(n) + 1, offsets64,
                            "offsets");
  LOWTW_CHECK_MSG(offsets64.front() == 0 && offsets64.back() == total,
                  "labeling binary: offset table disagrees with header total ("
                      << offsets64.back() << " vs " << total << ")");
  std::vector<graph::VertexId> hub_ids;
  std::vector<Weight> to_hub;
  std::vector<Weight> from_hub;
  binio::read_array_checked(is, total, hub_ids, "hub_ids");
  binio::read_array_checked(is, total, to_hub, "to_hub");
  binio::read_array_checked(is, total, from_hub, "from_hub");
  std::vector<std::size_t> offsets(offsets64.begin(), offsets64.end());
  // from_parts re-checks structure: monotone prefix sums, sorted hub spans.
  return FlatLabeling::from_parts(std::move(offsets), std::move(hub_ids),
                                  std::move(to_hub), std::move(from_hub));
}

/// Sidecar sections (kind 4 only): num_parts, then partition / flag /
/// bound arrays, each with its own checksum. Sizes are implied by the store
/// (n, total) plus num_parts, so a reader can bound every read.
void write_sidecar_payload(std::ostream& os, const FlatLabeling& labeling,
                           const FilterSidecar& sidecar) {
  const auto n = static_cast<std::size_t>(labeling.num_vertices());
  const std::uint64_t total = labeling.num_entries();
  const std::size_t wpe =
      (static_cast<std::size_t>(sidecar.num_parts) + 63) / 64;
  LOWTW_CHECK_MSG(sidecar.num_parts > 0 && sidecar.part_of.size() == n &&
                      sidecar.fwd_flags.size() == total * wpe &&
                      sidecar.bwd_flags.size() == total * wpe &&
                      sidecar.fwd_bound.size() == total &&
                      sidecar.bwd_bound.size() == total,
                  "labeling binary: filter sidecar disagrees with store");
  binio::write_pod(os, sidecar.num_parts);
  binio::write_array_checked(os, sidecar.part_of.data(), n);
  binio::write_array_checked(os, sidecar.fwd_flags.data(), total * wpe);
  binio::write_array_checked(os, sidecar.bwd_flags.data(), total * wpe);
  binio::write_array_checked(os, sidecar.fwd_bound.data(), total);
  binio::write_array_checked(os, sidecar.bwd_bound.data(), total);
}

FilterSidecar read_sidecar_payload(std::istream& is,
                                   const FlatLabeling& labeling) {
  FilterSidecar sc;
  sc.num_parts = binio::read_pod<std::int32_t>(is);
  LOWTW_CHECK_MSG(sc.num_parts > 0,
                  "labeling binary: non-positive filter part count");
  const auto n = static_cast<std::size_t>(labeling.num_vertices());
  const std::uint64_t total = labeling.num_entries();
  const std::size_t wpe = (static_cast<std::size_t>(sc.num_parts) + 63) / 64;
  binio::read_array_checked(is, n, sc.part_of, "filter part_of");
  binio::read_array_checked(is, total * wpe, sc.fwd_flags, "filter fwd_flags");
  binio::read_array_checked(is, total * wpe, sc.bwd_flags, "filter bwd_flags");
  binio::read_array_checked(is, total, sc.fwd_bound, "filter fwd_bound");
  binio::read_array_checked(is, total, sc.bwd_bound, "filter bwd_bound");
  return sc;
}

}  // namespace

void write_labeling_binary(std::ostream& os, const FlatLabeling& labeling) {
  binio::write_header(os, binio::kKindFlatLabeling, kLabelingBinaryVersion);
  write_flat_payload(os, labeling);
  LOWTW_CHECK_MSG(os.good(), "labeling binary: write failed");
}

void write_labeling_binary(std::ostream& os, const FlatLabeling& labeling,
                           const FilterSidecar& sidecar) {
  binio::write_header(os, binio::kKindFlatLabelingFiltered,
                      kFilteredBinaryVersion);
  write_flat_payload(os, labeling);
  write_sidecar_payload(os, labeling, sidecar);
  LOWTW_CHECK_MSG(os.good(), "labeling binary: write failed");
}

FlatLabeling read_flat_labeling_binary(std::istream& is) {
  return read_flat_labeling_binary(is, nullptr);
}

FlatLabeling read_flat_labeling_binary(
    std::istream& is, std::optional<FilterSidecar>* sidecar) {
  if (sidecar != nullptr) sidecar->reset();
  // Sniff the header by hand: both artifact generations are accepted, and
  // the (kind, version) pair decides whether sidecar sections follow.
  char magic[4] = {};
  is.read(magic, sizeof(magic));
  LOWTW_CHECK_MSG(is.good() && std::equal(magic, magic + 4, binio::kMagic),
                  "binary: bad magic");
  const auto version = binio::read_pod<std::uint32_t>(is);
  const auto kind = binio::read_pod<std::uint32_t>(is);
  LOWTW_CHECK_MSG(
      (kind == binio::kKindFlatLabeling &&
       version == kLabelingBinaryVersion) ||
          (kind == binio::kKindFlatLabelingFiltered &&
           version == kFilteredBinaryVersion),
      "labeling binary: unsupported kind/version " << kind << "/" << version);
  const auto endian = binio::read_pod<std::uint32_t>(is);
  LOWTW_CHECK_MSG(endian == binio::kEndianProbe,
                  "binary: endianness mismatch");
  FlatLabeling flat = read_flat_payload(is);
  if (kind == binio::kKindFlatLabelingFiltered) {
    // The sidecar is always consumed and validated (a truncated kind-4 file
    // must fail even for a caller that does not want the filter).
    FilterSidecar sc = read_sidecar_payload(is, flat);
    if (sidecar != nullptr) *sidecar = std::move(sc);
  }
  return flat;
}

void write_labeling_binary_file(const std::string& path,
                                const FlatLabeling& labeling) {
  util::atomic_write_file(
      path, [&](std::ostream& os) { write_labeling_binary(os, labeling); });
}

void write_labeling_binary_file(const std::string& path,
                                const FlatLabeling& labeling,
                                const FilterSidecar& sidecar) {
  util::atomic_write_file(path, [&](std::ostream& os) {
    write_labeling_binary(os, labeling, sidecar);
  });
}

FlatLabeling read_flat_labeling_binary_file(const std::string& path) {
  return read_flat_labeling_binary_file(path, nullptr);
}

FlatLabeling read_flat_labeling_binary_file(
    const std::string& path, std::optional<FilterSidecar>* sidecar) {
  std::ifstream is(path, std::ios::binary);
  LOWTW_CHECK_MSG(is.is_open(), "labeling binary: cannot open '" << path
                                    << "'");
  return read_flat_labeling_binary(is, sidecar);
}

}  // namespace lowtw::labeling::io
