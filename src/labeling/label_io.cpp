#include "labeling/label_io.hpp"

#include <istream>
#include <ostream>
#include <sstream>

#include "util/check.hpp"

namespace lowtw::labeling::io {

using graph::kInfinity;
using graph::Weight;

namespace {

void write_weight(std::ostream& os, Weight w) {
  if (w >= kInfinity) {
    os << "inf";
  } else {
    os << w;
  }
}

Weight read_weight(std::istream& is) {
  std::string tok;
  is >> tok;
  LOWTW_CHECK_MSG(!tok.empty(), "truncated labeling stream");
  if (tok == "inf") return kInfinity;
  return std::stoll(tok);
}

}  // namespace

void write_labeling(std::ostream& os, const DistanceLabeling& labeling) {
  os << "labeling " << labeling.labels.size() << "\n";
  for (const Label& l : labeling.labels) {
    os << "l " << l.owner << " " << l.entries.size() << "\n";
    for (const LabelEntry& e : l.entries) {
      os << "e " << e.hub << " ";
      write_weight(os, e.to_hub);
      os << " ";
      write_weight(os, e.from_hub);
      os << "\n";
    }
  }
}

DistanceLabeling read_labeling(std::istream& is) {
  DistanceLabeling out;
  std::string tag;
  LOWTW_CHECK_MSG(is >> tag && tag == "labeling", "missing labeling header");
  std::size_t n = 0;
  is >> n;
  out.labels.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    LOWTW_CHECK_MSG(is >> tag && tag == "l", "expected label record");
    Label& l = out.labels[i];
    std::size_t k = 0;
    is >> l.owner >> k;
    l.entries.resize(k);
    graph::VertexId prev_hub = graph::kNoVertex;
    for (std::size_t j = 0; j < k; ++j) {
      LOWTW_CHECK_MSG(is >> tag && tag == "e", "expected entry record");
      LabelEntry& e = l.entries[j];
      is >> e.hub;
      e.to_hub = read_weight(is);
      e.from_hub = read_weight(is);
      LOWTW_CHECK_MSG(e.hub > prev_hub, "entries not sorted by hub");
      prev_hub = e.hub;
    }
  }
  return out;
}

}  // namespace lowtw::labeling::io
