#include "labeling/label_io.hpp"

#include <istream>
#include <ostream>
#include <sstream>

#include "util/check.hpp"

namespace lowtw::labeling::io {

using graph::kInfinity;
using graph::Weight;

namespace {

void write_weight(std::ostream& os, Weight w) {
  if (w >= kInfinity) {
    os << "inf";
  } else {
    os << w;
  }
}

Weight read_weight(std::istream& is) {
  std::string tok;
  is >> tok;
  LOWTW_CHECK_MSG(!tok.empty(), "truncated labeling stream");
  if (tok == "inf") return kInfinity;
  return std::stoll(tok);
}

}  // namespace

void write_labeling(std::ostream& os, const DistanceLabeling& labeling) {
  os << "labeling " << labeling.labels.size() << "\n";
  for (const Label& l : labeling.labels) {
    os << "l " << l.owner << " " << l.entries.size() << "\n";
    for (const LabelEntry& e : l.entries) {
      os << "e " << e.hub << " ";
      write_weight(os, e.to_hub);
      os << " ";
      write_weight(os, e.from_hub);
      os << "\n";
    }
  }
}

void write_labeling(std::ostream& os, const FlatLabeling& labeling) {
  const int n = labeling.num_vertices();
  os << "labeling " << n << "\n";
  for (graph::VertexId v = 0; v < n; ++v) {
    auto hubs = labeling.hubs(v);
    auto to = labeling.to_hub(v);
    auto from = labeling.from_hub(v);
    os << "l " << v << " " << hubs.size() << "\n";
    for (std::size_t i = 0; i < hubs.size(); ++i) {
      os << "e " << hubs[i] << " ";
      write_weight(os, to[i]);
      os << " ";
      write_weight(os, from[i]);
      os << "\n";
    }
  }
}

FlatLabeling read_flat_labeling(std::istream& is) {
  std::string tag;
  LOWTW_CHECK_MSG(is >> tag && tag == "labeling", "missing labeling header");
  std::size_t n = 0;
  is >> n;
  std::vector<std::size_t> offsets;
  offsets.reserve(n + 1);
  offsets.push_back(0);
  std::vector<graph::VertexId> hub_ids;
  std::vector<Weight> to_hub;
  std::vector<Weight> from_hub;
  for (std::size_t i = 0; i < n; ++i) {
    LOWTW_CHECK_MSG(is >> tag && tag == "l", "expected label record");
    graph::VertexId owner = graph::kNoVertex;
    std::size_t k = 0;
    is >> owner >> k;
    for (std::size_t j = 0; j < k; ++j) {
      LOWTW_CHECK_MSG(is >> tag && tag == "e", "expected entry record");
      graph::VertexId hub = graph::kNoVertex;
      is >> hub;
      hub_ids.push_back(hub);
      to_hub.push_back(read_weight(is));
      from_hub.push_back(read_weight(is));
    }
    offsets.push_back(hub_ids.size());
  }
  // from_parts re-checks the per-span hub sort order (the "entries not
  // sorted by hub" guard of the AoS reader).
  return FlatLabeling::from_parts(std::move(offsets), std::move(hub_ids),
                                  std::move(to_hub), std::move(from_hub));
}

DistanceLabeling read_labeling(std::istream& is) {
  DistanceLabeling out;
  std::string tag;
  LOWTW_CHECK_MSG(is >> tag && tag == "labeling", "missing labeling header");
  std::size_t n = 0;
  is >> n;
  out.labels.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    LOWTW_CHECK_MSG(is >> tag && tag == "l", "expected label record");
    Label& l = out.labels[i];
    std::size_t k = 0;
    is >> l.owner >> k;
    l.entries.resize(k);
    graph::VertexId prev_hub = graph::kNoVertex;
    for (std::size_t j = 0; j < k; ++j) {
      LOWTW_CHECK_MSG(is >> tag && tag == "e", "expected entry record");
      LabelEntry& e = l.entries[j];
      is >> e.hub;
      e.to_hub = read_weight(is);
      e.from_hub = read_weight(is);
      LOWTW_CHECK_MSG(e.hub > prev_hub, "entries not sorted by hub");
      prev_hub = e.hub;
    }
  }
  return out;
}

}  // namespace lowtw::labeling::io
