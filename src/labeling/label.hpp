// Distance labels (Section 4, Definition 1).
//
// The label of u is the distance set d_G(u, B↑_Φ(u)): for every hub vertex
// s in the union of the bags on u's root path, the pair of directed
// distances (d(u→s), d(s→u)). The decoder is
//     dec(la(u), la(v)) = min over common hubs s of d(u→s) + d(s→v).
//
// Entries are exact in the graph G_y of the level y where the hub's bag
// lives (see the construction in distance_labeling.cpp); this suffices for
// exact decoding — the correctness argument is Lemma 2, re-verified
// exhaustively in tests against Dijkstra.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace lowtw::labeling {

struct LabelEntry {
  graph::VertexId hub = graph::kNoVertex;
  graph::Weight to_hub = graph::kInfinity;    ///< d(owner → hub)
  graph::Weight from_hub = graph::kInfinity;  ///< d(hub → owner)
};

struct Label {
  graph::VertexId owner = graph::kNoVertex;
  /// Entries sorted by hub id (unique hubs).
  std::vector<LabelEntry> entries;

  /// Binary-search lookup; returns nullptr if `hub` is not a hub of owner.
  const LabelEntry* find(graph::VertexId hub) const;

  /// Upserts an entry, keeping entries sorted.
  void set(graph::VertexId hub, graph::Weight to_hub, graph::Weight from_hub);

  /// Label size in bits: 3 words of ceil(log2 n) + 2 bits... measured as
  /// 3 * 64 bits per entry for the reported "label size" statistic; the
  /// theoretical O(τ² log² n) bound is checked against entries.size().
  std::size_t size_bits() const { return entries.size() * 3 * 64; }
};

/// The decoder dec(la(u), la(v)) of Section 4.1: min over common hubs.
/// Returns kInfinity if unreachable or no common hub.
graph::Weight decode_distance(const Label& from, const Label& to);

/// A full labeling plus convenience queries.
struct DistanceLabeling {
  std::vector<Label> labels;  ///< indexed by vertex

  graph::Weight distance(graph::VertexId u, graph::VertexId v) const {
    return decode_distance(labels[u], labels[v]);
  }

  std::size_t max_entries() const;
  double mean_entries() const;
};

}  // namespace lowtw::labeling
