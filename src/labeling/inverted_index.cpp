#include "labeling/inverted_index.hpp"

#include <algorithm>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define LOWTW_X86_DISPATCH 1
#include <immintrin.h>
#endif

#include "util/check.hpp"

namespace lowtw::labeling {

using graph::kInfinity;
using graph::VertexId;
using graph::Weight;

namespace {

// --- postings-relax kernels --------------------------------------------------
//
// out[pv[j]] = min(out[pv[j]], leg + w[j]) over one postings run: the
// hub-major half of the decoder's min-fold, with the hub leg hoisted to a
// broadcast constant. Vertices are unique within a run, so the AVX-512
// variant's gather → min → masked-scatter has no intra-vector conflicts;
// all variants compute the identical integer mins. Selected once at startup
// by CPU feature, like the gather-min dispatch in flat_labeling.cpp.

void postings_relax_scalar(const VertexId* pv, const Weight* w, std::size_t m,
                           Weight leg, Weight* out) {
  std::size_t j = 0;
  for (; j + 2 <= m; j += 2) {
    const Weight c0 = leg + w[j];
    const VertexId v0 = pv[j];
    if (c0 < out[v0]) out[v0] = c0;
    const Weight c1 = leg + w[j + 1];
    const VertexId v1 = pv[j + 1];
    if (c1 < out[v1]) out[v1] = c1;
  }
  if (j < m) {
    const Weight c = leg + w[j];
    if (c < out[pv[j]]) out[pv[j]] = c;
  }
}

#ifdef LOWTW_X86_DISPATCH

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
__attribute__((target("avx512f"))) void postings_relax_avx512(
    const VertexId* pv, const Weight* w, std::size_t m, Weight leg,
    Weight* out) {
  const __m512i vleg = _mm512_set1_epi64(leg);
  std::size_t j = 0;
  for (; j + 8 <= m; j += 8) {
    const __m256i idx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pv + j));
    const __m512i wv = _mm512_loadu_si512(static_cast<const void*>(w + j));
    const __m512i cand = _mm512_add_epi64(vleg, wv);
    const __m512i cur = _mm512_mask_i32gather_epi64(
        cand, static_cast<__mmask8>(0xFF), idx,
        reinterpret_cast<const long long*>(out), 8);
    // Scatter only the improved lanes; lanes at or above the current value
    // leave out[] untouched, exactly like the scalar compare-store.
    const __mmask8 lt = _mm512_cmplt_epi64_mask(cand, cur);
    _mm512_mask_i32scatter_epi64(reinterpret_cast<long long*>(out), lt, idx,
                                 cand, 8);
  }
  for (; j < m; ++j) {
    const Weight c = leg + w[j];
    if (c < out[pv[j]]) out[pv[j]] = c;
  }
}
#pragma GCC diagnostic pop

#endif  // LOWTW_X86_DISPATCH

using PostingsRelaxFn = void (*)(const VertexId*, const Weight*, std::size_t,
                                 Weight, Weight*);

PostingsRelaxFn pick_postings_relax() {
#ifdef LOWTW_X86_DISPATCH
  if (__builtin_cpu_supports("avx512f")) return postings_relax_avx512;
#endif
  return postings_relax_scalar;
}

const PostingsRelaxFn kPostingsRelax = pick_postings_relax();

}  // namespace

void InvertedHubIndex::assign(const FlatLabeling& labels) {
  const int n = labels.num_vertices();
  const auto hub_bound = static_cast<std::size_t>(labels.hub_bound());
  const std::size_t total = labels.num_entries();

  // Counting-sort transpose: histogram hub occurrences, prefix-sum into the
  // offset table, then scan vertices in ascending id order so every postings
  // run comes out vertex-sorted without a comparison sort.
  offsets_.assign(hub_bound + 1, 0);
  for (VertexId v = 0; v < n; ++v) {
    for (VertexId h : labels.hubs(v)) {
      ++offsets_.mut(static_cast<std::size_t>(h) + 1);
    }
  }
  for (std::size_t h = 0; h < hub_bound; ++h) offsets_.mut(h + 1) += offsets_[h];
  LOWTW_CHECK(offsets_[hub_bound] == total);

  vertices_.resize(total);
  to_hub_.resize(total);
  from_hub_.resize(total);
  std::vector<std::size_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (VertexId v = 0; v < n; ++v) {
    auto hubs = labels.hubs(v);
    auto to = labels.to_hub(v);
    auto from = labels.from_hub(v);
    for (std::size_t i = 0; i < hubs.size(); ++i) {
      const std::size_t pos = cursor[hubs[i]]++;
      vertices_.mut(pos) = v;
      to_hub_.mut(pos) = to[i];
      from_hub_.mut(pos) = from[i];
    }
  }

  num_vertices_ = n;
  source_ = &labels;
  source_generation_ = labels.generation();
}

InvertedHubIndex InvertedHubIndex::from_parts(
    const FlatLabeling& source, util::ArrayRef<std::size_t> offsets,
    util::ArrayRef<VertexId> vertices, util::ArrayRef<Weight> to_hub,
    util::ArrayRef<Weight> from_hub) {
  const auto hub_bound = static_cast<std::size_t>(source.hub_bound());
  const int n = source.num_vertices();
  LOWTW_CHECK_MSG(offsets.size() == hub_bound + 1,
                  "inverted from_parts: offset table does not span hub bound");
  LOWTW_CHECK_MSG(offsets.front() == 0 &&
                      offsets.back() == source.num_entries(),
                  "inverted from_parts: postings total mismatch");
  LOWTW_CHECK_MSG(vertices.size() == source.num_entries() &&
                      to_hub.size() == vertices.size() &&
                      from_hub.size() == vertices.size(),
                  "inverted from_parts: array length mismatch");
  for (std::size_t h = 0; h < hub_bound; ++h) {
    LOWTW_CHECK_MSG(offsets[h] <= offsets[h + 1],
                    "inverted from_parts: offsets not monotone");
    for (std::size_t i = offsets[h]; i < offsets[h + 1]; ++i) {
      LOWTW_CHECK_MSG(vertices[i] >= 0 && vertices[i] < n,
                      "inverted from_parts: vertex out of range");
      LOWTW_CHECK_MSG(i == offsets[h] || vertices[i - 1] < vertices[i],
                      "inverted from_parts: postings run not ascending");
    }
  }
  InvertedHubIndex idx;
  idx.offsets_ = std::move(offsets);
  idx.vertices_ = std::move(vertices);
  idx.to_hub_ = std::move(to_hub);
  idx.from_hub_ = std::move(from_hub);
  idx.num_vertices_ = n;
  idx.source_ = &source;
  idx.source_generation_ = source.generation();
  return idx;
}

void InvertedHubIndex::one_vs_all(VertexId source,
                                  std::span<Weight> out_dist,
                                  std::span<Weight> out_dist_to) const {
  LOWTW_CHECK_MSG(source_ != nullptr &&
                      source_generation_ == source_->generation(),
                  "inverted one_vs_all on a stale or empty index");
  LOWTW_CHECK(out_dist.size() == static_cast<std::size_t>(num_vertices_));
  LOWTW_CHECK(out_dist_to.size() == static_cast<std::size_t>(num_vertices_));
  std::fill(out_dist.begin(), out_dist.end(), kInfinity);
  std::fill(out_dist_to.begin(), out_dist_to.end(), kInfinity);

  auto hubs = source_->hubs(source);
  auto to = source_->to_hub(source);
  auto from = source_->from_hub(source);
  for (std::size_t i = 0; i < hubs.size(); ++i) {
    const VertexId h = hubs[i];
    const std::size_t base = offsets_[h];
    const std::size_t m = postings(h);
    // An infinite leg can never beat the kInfinity the outputs start at
    // (candidates only saturate further), so the whole run is skipped —
    // same result as the flat sweep's padded candidates, fewer loads.
    if (to[i] < kInfinity) {
      kPostingsRelax(vertices_.data() + base, from_hub_.data() + base, m,
                     to[i], out_dist.data());
    }
    if (from[i] < kInfinity) {
      kPostingsRelax(vertices_.data() + base, to_hub_.data() + base, m,
                     from[i], out_dist_to.data());
    }
  }
}

}  // namespace lowtw::labeling
