// Inverted hub index: the postings-form companion of the frozen SoA store.
//
// `FlatLabeling` answers "what are the hubs of v?" — one span per vertex.
// The inverted index answers the transposed question, "which vertices carry
// hub h?": for every hub, one sorted postings run of (vertex, to_hub,
// from_hub), with an offset table over hub ids. It is built once per frozen
// store by a counting-sort transpose (two O(total-entries) passes, no
// comparison sort) and keyed to the store's generation stamp, so a re-frozen
// store invalidates the index instead of silently decoding stale weights.
//
// Why it exists: the one-vs-all decode of the flat store sweeps *every*
// label span — O(total entries) per source, most of it spent on vertices
// that share no hub with the source. Inverted, the same query walks only the
// postings of the source's own hubs: for each hub s of u with legs
// (d(u→s), d(s→u)), every posting (v, d(v→s), d(s→v)) contributes the
// candidates d(u→s) + d(s→v) and d(v→s) + d(s→u) — exactly the common-hub
// candidate set of the decoder, enumerated hub-major instead of
// vertex-major. Each postings run is one contiguous ascending-vertex stream,
// so the fold is pure sequential merges into the output arrays; the
// per-source cost drops from the store total to the postings volume of one
// root path (a log-factor less on hierarchy-built labelings, where deep
// hubs index only their subtree).
//
// The min-fold is order-invariant and the unguarded leg sums saturate past
// kInfinity without overflowing (kInfinity = max/4), so results are
// bit-identical to FlatLabeling::decode_one_vs_all — property-tested in
// tests/test_query_plane.cpp against the flat kernels and Dijkstra.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "labeling/flat_labeling.hpp"
#include "util/array_ref.hpp"

namespace lowtw::labeling {

class InvertedHubIndex {
 public:
  InvertedHubIndex() = default;

  /// Builds the postings form of `labels`. O(total entries + hub bound).
  explicit InvertedHubIndex(const FlatLabeling& labels) { assign(labels); }

  /// Rebuilds into the same storage (buffers are reused once grown) and
  /// re-keys the index to the store's current generation.
  void assign(const FlatLabeling& labels);

  /// True iff this index was built from `labels` at its current generation —
  /// the freshness check callers use to rebuild lazily on reuse.
  bool matches(const FlatLabeling& labels) const {
    return source_ == &labels && source_generation_ == labels.generation();
  }

  bool empty() const { return source_ == nullptr; }
  int num_vertices() const { return num_vertices_; }
  /// Exclusive upper bound on indexed hub ids (= the store's hub_bound()).
  graph::VertexId hub_bound() const {
    return static_cast<graph::VertexId>(offsets_.size()) - 1;
  }
  std::size_t num_postings() const { return vertices_.size(); }

  std::size_t postings(graph::VertexId hub) const {
    return offsets_[hub + 1] - offsets_[hub];
  }
  /// Ascending vertex ids carrying `hub`, paired index-wise with
  /// to_hub(hub) / from_hub(hub).
  std::span<const graph::VertexId> vertices(graph::VertexId hub) const {
    return {vertices_.data() + offsets_[hub], postings(hub)};
  }
  /// d(vertex → hub) per posting.
  std::span<const graph::Weight> to_hub(graph::VertexId hub) const {
    return {to_hub_.data() + offsets_[hub], postings(hub)};
  }
  /// d(hub → vertex) per posting.
  std::span<const graph::Weight> from_hub(graph::VertexId hub) const {
    return {from_hub_.data() + offsets_[hub], postings(hub)};
  }

  /// Whole packed arrays (persistence writers).
  std::span<const std::size_t> raw_offsets() const {
    return {offsets_.data(), offsets_.size()};
  }
  std::span<const graph::VertexId> raw_vertices() const {
    return {vertices_.data(), vertices_.size()};
  }
  std::span<const graph::Weight> raw_to_hub() const {
    return {to_hub_.data(), to_hub_.size()};
  }
  std::span<const graph::Weight> raw_from_hub() const {
    return {from_hub_.data(), from_hub_.size()};
  }

  /// Batch kernel: decodes `source` against every vertex by merging the
  /// postings runs of source's hubs, writing out_dist[v] = dec(source, v)
  /// and out_dist_to[v] = dec(v, source). Bit-identical to
  /// FlatLabeling::decode_one_vs_all on the source store; spans must be
  /// sized num_vertices(). Cost: O(|label(source)| + postings volume of
  /// source's hubs) instead of the store total.
  void one_vs_all(graph::VertexId source, std::span<graph::Weight> out_dist,
                  std::span<graph::Weight> out_dist_to) const;

  /// Assembles the index from a pre-built postings transpose — the frozen-
  /// image load path (the arrays are ArrayRef::borrowed views into the
  /// mapping, so no transpose work runs on load). Validates structure
  /// against `source`: the offset table spans the store's hub bound, runs
  /// are vertex-ascending with ids in range, and the postings total matches
  /// the store's entry total. Binds to `source` at its current generation —
  /// the caller must pass the store the image was written from, at its
  /// final address (e.g. already moved into the serving snapshot).
  static InvertedHubIndex from_parts(const FlatLabeling& source,
                                     util::ArrayRef<std::size_t> offsets,
                                     util::ArrayRef<graph::VertexId> vertices,
                                     util::ArrayRef<graph::Weight> to_hub,
                                     util::ArrayRef<graph::Weight> from_hub);

 private:
  /// Borrowed-or-owned postings storage (see FlatLabeling's storage note).
  util::ArrayRef<std::size_t> offsets_;      ///< size hub_bound+1
  util::ArrayRef<graph::VertexId> vertices_;
  util::ArrayRef<graph::Weight> to_hub_;
  util::ArrayRef<graph::Weight> from_hub_;
  int num_vertices_ = 0;
  const FlatLabeling* source_ = nullptr;
  std::uint64_t source_generation_ = 0;
};

}  // namespace lowtw::labeling
