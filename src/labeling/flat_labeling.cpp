#include "labeling/flat_labeling.hpp"

#include <algorithm>
#include <atomic>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define LOWTW_X86_DISPATCH 1
#include <immintrin.h>
#endif

#include "util/check.hpp"

namespace lowtw::labeling {

using graph::kInfinity;
using graph::VertexId;
using graph::Weight;

namespace {

std::uint64_t next_generation() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

/// Span-size ratio beyond which the merge switches to galloping over the
/// longer side. 16 keeps the plain merge on the (common) balanced spans and
/// only gallops when the log-factor clearly wins.
constexpr std::size_t kGallopRatio = 16;

/// Exponential search: smallest index in [lo, n) with h[index] >= key.
/// O(log(result - lo)) — the gallop start is the previous match position, so
/// a full pass over the small side costs O(small · log(large / small)).
std::size_t gallop(const VertexId* h, std::size_t lo, std::size_t n,
                   VertexId key) {
  std::size_t step = 1;
  std::size_t hi = lo;
  while (hi < n && h[hi] < key) {
    lo = hi + 1;
    hi += step;
    step *= 2;
  }
  if (hi > n) hi = n;
  return static_cast<std::size_t>(
      std::lower_bound(h + lo, h + hi, key) - h);
}

/// Min over common hubs of a_cost + b_cost. The sum is unguarded: legs are
/// either exact distances or kInfinity, and kInfinity = max/4 means any
/// infinite leg pushes the sum past the running best (which never exceeds
/// kInfinity) without overflowing — identical to the guarded AoS decoder.
Weight decode_merge(const VertexId* ah, const Weight* acost, std::size_t an,
                    const VertexId* bh, const Weight* bcost, std::size_t bn) {
  Weight best = kInfinity;
  if (an == 0 || bn == 0) return best;
  if (an > kGallopRatio * bn || bn > kGallopRatio * an) {
    // Gallop over the long side, iterate the short side.
    const bool a_small = an < bn;
    const VertexId* sh = a_small ? ah : bh;
    const VertexId* lh = a_small ? bh : ah;
    const Weight* sc = a_small ? acost : bcost;
    const Weight* lc = a_small ? bcost : acost;
    const std::size_t sn = a_small ? an : bn;
    const std::size_t ln = a_small ? bn : an;
    std::size_t j = 0;
    for (std::size_t i = 0; i < sn; ++i) {
      j = gallop(lh, j, ln, sh[i]);
      if (j == ln) break;
      if (lh[j] == sh[i]) {
        const Weight cand = sc[i] + lc[j];
        best = cand < best ? cand : best;
        ++j;
      }
    }
    return best;
  }
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < an && j < bn) {
    const VertexId x = ah[i];
    const VertexId y = bh[j];
    if (x == y) {
      const Weight cand = acost[i] + bcost[j];
      best = cand < best ? cand : best;
      ++i;
      ++j;
    } else {
      // Branch-light advance: exactly one side steps per mismatch.
      i += static_cast<std::size_t>(x < y);
      j += static_cast<std::size_t>(y < x);
    }
  }
  return best;
}

}  // namespace

void FlatLabeling::assign(const DistanceLabeling& labeling) {
  const std::size_t n = labeling.labels.size();
  std::size_t total = 0;
  for (const Label& l : labeling.labels) total += l.entries.size();
  offsets_.resize(n + 1);
  hub_ids_.resize(total);
  to_hub_.resize(total);
  from_hub_.resize(total);
  std::size_t pos = 0;
  hub_bound_ = static_cast<VertexId>(n);
  for (std::size_t v = 0; v < n; ++v) {
    offsets_.mut(v) = pos;
    for (const LabelEntry& e : labeling.labels[v].entries) {
      hub_ids_.mut(pos) = e.hub;
      to_hub_.mut(pos) = e.to_hub;
      from_hub_.mut(pos) = e.from_hub;
      hub_bound_ = std::max(hub_bound_, e.hub + 1);
      ++pos;
    }
  }
  offsets_.mut(n) = pos;
  generation_ = next_generation();
}

std::size_t FlatLabeling::max_entries() const {
  std::size_t m = 0;
  for (VertexId v = 0; v < num_vertices(); ++v) {
    m = std::max(m, entries(v));
  }
  return m;
}

Weight FlatLabeling::decode(VertexId u, VertexId v) const {
  const std::size_t ua = offsets_[u];
  const std::size_t vb = offsets_[v];
  return decode_merge(hub_ids_.data() + ua, to_hub_.data() + ua, entries(u),
                      hub_ids_.data() + vb, from_hub_.data() + vb,
                      entries(v));
}

void FlatLabeling::pin(VertexId u, DecodeScratch& scratch,
                       PinSide side) const {
  const auto n = static_cast<std::size_t>(hub_bound_);
  const bool want_to = side != PinSide::kFrom;
  const bool want_from = side != PinSide::kTo;
  // A scratch carried over from a different (or re-frozen) store must be
  // refilled wholesale: its incremental un-scatter bookkeeping is keyed to
  // the previous store's spans.
  if (scratch.owner != this || scratch.owner_generation != generation_) {
    scratch.dense_to.clear();
    scratch.dense_from.clear();
    scratch.pinned = graph::kNoVertex;
    scratch.to_valid = false;
    scratch.from_valid = false;
    scratch.owner = this;
    scratch.owner_generation = generation_;
  }
  if (want_to && scratch.dense_to.size() < n) {
    scratch.dense_to.assign(n, kInfinity);
    scratch.to_valid = false;
  }
  if (want_from && scratch.dense_from.size() < n) {
    scratch.dense_from.assign(n, kInfinity);
    scratch.from_valid = false;
  }
  // Un-scatter the previous pin instead of refilling n cells.
  if (scratch.pinned != graph::kNoVertex) {
    for (VertexId h : hubs(scratch.pinned)) {
      if (scratch.to_valid) scratch.dense_to[h] = kInfinity;
      if (scratch.from_valid) scratch.dense_from[h] = kInfinity;
    }
  }
  auto h = hubs(u);
  auto to = to_hub(u);
  auto from = from_hub(u);
  if (want_to) {
    for (std::size_t i = 0; i < h.size(); ++i) {
      scratch.dense_to[h[i]] = to[i];
    }
  }
  if (want_from) {
    for (std::size_t i = 0; i < h.size(); ++i) {
      scratch.dense_from[h[i]] = from[i];
    }
  }
  scratch.pinned = u;
  scratch.to_valid = want_to;
  scratch.from_valid = want_from;
}

namespace {

// --- gather-min kernels ------------------------------------------------------
//
// min over j of dense[vh[j]] + vcost[j]: the inner product of a span against
// a pinned dense label. All variants compute the identical integer min; the
// SIMD ones just fold 4 / 8 lanes per step. Selected once at startup by CPU
// feature (the function-level `target` attributes keep the baseline build
// portable — no global -march flags).

Weight gather_min_scalar(const VertexId* vh, const Weight* vcost,
                         std::size_t m, const Weight* dense) {
  Weight b0 = kInfinity;
  Weight b1 = kInfinity;
  std::size_t j = 0;
  for (; j + 2 <= m; j += 2) {
    const Weight c0 = dense[vh[j]] + vcost[j];
    b0 = c0 < b0 ? c0 : b0;
    const Weight c1 = dense[vh[j + 1]] + vcost[j + 1];
    b1 = c1 < b1 ? c1 : b1;
  }
  if (j < m) {
    const Weight c = dense[vh[j]] + vcost[j];
    b0 = c < b0 ? c : b0;
  }
  return b0 < b1 ? b0 : b1;
}

#ifdef LOWTW_X86_DISPATCH

__attribute__((target("avx2"))) Weight gather_min_avx2(
    const VertexId* vh, const Weight* vcost, std::size_t m,
    const Weight* dense) {
  __m256i best = _mm256_set1_epi64x(kInfinity);
  std::size_t j = 0;
  for (; j + 4 <= m; j += 4) {
    const __m128i idx =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(vh + j));
    const __m256i dt = _mm256_i32gather_epi64(
        reinterpret_cast<const long long*>(dense), idx, 8);
    const __m256i vc =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(vcost + j));
    const __m256i cand = _mm256_add_epi64(dt, vc);
    best = _mm256_blendv_epi8(best, cand, _mm256_cmpgt_epi64(best, cand));
  }
  alignas(32) long long lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), best);
  Weight b = std::min(std::min(lanes[0], lanes[1]),
                      std::min(lanes[2], lanes[3]));
  for (; j < m; ++j) {
    const Weight c = dense[vh[j]] + vcost[j];
    b = c < b ? c : b;
  }
  return b;
}

// GCC's avx512 header builds unmasked intrinsics on a self-initialized
// "undefined" vector (`__m512i __Y = __Y`), which -Wuninitialized flags
// through inlining (GCC PR105593). The lanes are fully overwritten; mute
// the false positive locally.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
__attribute__((target("avx512f"))) Weight gather_min_avx512(
    const VertexId* vh, const Weight* vcost, std::size_t m,
    const Weight* dense) {
  __m512i best = _mm512_set1_epi64(kInfinity);
  std::size_t j = 0;
  for (; j + 8 <= m; j += 8) {
    const __m256i idx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(vh + j));
    // Masked full-lane gather: the explicit source operand avoids the
    // undefined-passthrough of the plain intrinsic (and its -Wuninitialized
    // noise) at no cost.
    const __m512i dt = _mm512_mask_i32gather_epi64(
        best, static_cast<__mmask8>(0xFF), idx,
        reinterpret_cast<const long long*>(dense), 8);
    const __m512i vc = _mm512_loadu_si512(static_cast<const void*>(vcost + j));
    best = _mm512_min_epi64(best, _mm512_add_epi64(dt, vc));
  }
  Weight b = _mm512_reduce_min_epi64(best);
  for (; j < m; ++j) {
    const Weight c = dense[vh[j]] + vcost[j];
    b = c < b ? c : b;
  }
  return b;
}
#pragma GCC diagnostic pop

#endif  // LOWTW_X86_DISPATCH

using GatherMinFn = Weight (*)(const VertexId*, const Weight*, std::size_t,
                               const Weight*);

GatherMinFn pick_gather_min() {
#ifdef LOWTW_X86_DISPATCH
  if (__builtin_cpu_supports("avx512f")) return gather_min_avx512;
  if (__builtin_cpu_supports("avx2")) return gather_min_avx2;
#endif
  return gather_min_scalar;
}

const GatherMinFn kGatherMin = pick_gather_min();

inline void prefetch_lines(const void* p32, const void* p64) {
#if defined(__GNUC__) || defined(__clang__)
  // Leading lines of the 4-byte hub stream and the 8-byte weight stream
  // (typical spans are a handful of lines); the hardware prefetcher picks
  // up any remainder.
  __builtin_prefetch(p32);
  __builtin_prefetch(static_cast<const VertexId*>(p32) + 16);
  __builtin_prefetch(p64);
  __builtin_prefetch(static_cast<const Weight*>(p64) + 8);
  __builtin_prefetch(static_cast<const Weight*>(p64) + 16);
  __builtin_prefetch(static_cast<const Weight*>(p64) + 24);
#else
  (void)p32;
  (void)p64;
#endif
}

}  // namespace

Weight FlatLabeling::decode_from_pinned(const DecodeScratch& scratch,
                                        VertexId v) const {
  LOWTW_CHECK_MSG(scratch.to_valid && scratch.owner == this &&
                      scratch.owner_generation == generation_,
                  "decode_from_pinned without a matching to-side pin");
  // Branchless gather: hubs outside the pinned label read kInfinity, whose
  // sum with any finite leg stays >= kInfinity and never wins the min.
  const std::size_t vb = offsets_[v];
  return kGatherMin(hub_ids_.data() + vb, from_hub_.data() + vb, entries(v),
                    scratch.dense_to.data());
}

Weight FlatLabeling::decode_to_pinned(const DecodeScratch& scratch,
                                      VertexId v) const {
  LOWTW_CHECK_MSG(scratch.from_valid && scratch.owner == this &&
                      scratch.owner_generation == generation_,
                  "decode_to_pinned without a matching from-side pin");
  const std::size_t vb = offsets_[v];
  return kGatherMin(hub_ids_.data() + vb, to_hub_.data() + vb, entries(v),
                    scratch.dense_from.data());
}

void FlatLabeling::prefetch_target(VertexId v) const {
  const std::size_t vb = offsets_[v];
  prefetch_lines(hub_ids_.data() + vb, from_hub_.data() + vb);
}

void FlatLabeling::prefetch_source(VertexId v) const {
  const std::size_t vb = offsets_[v];
  prefetch_lines(hub_ids_.data() + vb, to_hub_.data() + vb);
}

void FlatLabeling::decode_one_vs_all(VertexId u,
                                     std::span<Weight> out_dist,
                                     std::span<Weight> out_dist_to) const {
  const int n = num_vertices();
  LOWTW_CHECK(out_dist.size() == static_cast<std::size_t>(n));
  LOWTW_CHECK(out_dist_to.size() == static_cast<std::size_t>(n));
  DecodeScratch scratch;
  pin(u, scratch);
  // The sweep streams the packed spans sequentially end to end, so the
  // hardware prefetcher keeps the gather kernels fed without hints.
  for (VertexId v = 0; v < n; ++v) {
    const std::size_t vb = offsets_[v];
    const std::size_t vn = entries(v);
    out_dist[v] = kGatherMin(hub_ids_.data() + vb, from_hub_.data() + vb, vn,
                             scratch.dense_to.data());
    out_dist_to[v] = kGatherMin(hub_ids_.data() + vb, to_hub_.data() + vb, vn,
                                scratch.dense_from.data());
  }
}

DistanceLabeling FlatLabeling::thaw() const {
  DistanceLabeling out;
  const int n = num_vertices();
  out.labels.resize(static_cast<std::size_t>(n));
  for (VertexId v = 0; v < n; ++v) {
    Label& l = out.labels[v];
    l.owner = v;
    auto h = hubs(v);
    auto to = to_hub(v);
    auto from = from_hub(v);
    l.entries.resize(h.size());
    for (std::size_t i = 0; i < h.size(); ++i) {
      l.entries[i] = LabelEntry{h[i], to[i], from[i]};
    }
  }
  return out;
}

FlatLabeling FlatLabeling::from_parts(util::ArrayRef<std::size_t> offsets,
                                      util::ArrayRef<VertexId> hub_ids,
                                      util::ArrayRef<Weight> to_hub,
                                      util::ArrayRef<Weight> from_hub) {
  LOWTW_CHECK_MSG(!offsets.empty() && offsets.front() == 0 &&
                      offsets.back() == hub_ids.size(),
                  "flat labeling: malformed offset table");
  LOWTW_CHECK(to_hub.size() == hub_ids.size());
  LOWTW_CHECK(from_hub.size() == hub_ids.size());
  for (std::size_t v = 0; v + 1 < offsets.size(); ++v) {
    LOWTW_CHECK_MSG(offsets[v] <= offsets[v + 1],
                    "flat labeling: offsets not monotone");
    // The span minimum is its first hub; negative ids would index the dense
    // pin arrays out of bounds.
    LOWTW_CHECK_MSG(offsets[v] == offsets[v + 1] || hub_ids[offsets[v]] >= 0,
                    "flat labeling: negative hub id");
    for (std::size_t i = offsets[v] + 1; i < offsets[v + 1]; ++i) {
      LOWTW_CHECK_MSG(hub_ids[i - 1] < hub_ids[i],
                      "flat labeling: hubs not sorted");
    }
  }
  FlatLabeling f;
  f.offsets_ = std::move(offsets);
  f.hub_ids_ = std::move(hub_ids);
  f.to_hub_ = std::move(to_hub);
  f.from_hub_ = std::move(from_hub);
  f.hub_bound_ = static_cast<VertexId>(f.num_vertices());
  for (VertexId h : f.hub_ids_) {
    f.hub_bound_ = std::max(f.hub_bound_, h + 1);
  }
  f.generation_ = next_generation();
  return f;
}

}  // namespace lowtw::labeling
