// Persistence for distance labelings.
//
// Distance labels are a *data structure deliverable*: once the CONGEST
// construction phase is done, each node's label can be exported, stored,
// shipped to a query service, and decoded with zero further communication.
// Format (text, line-oriented, '#' comments allowed):
//   labeling <n>
//   l <owner> <k>            — label of `owner` with k entries
//   e <hub> <to_hub> <from_hub>   — k entry lines (kInfinity spelled "inf")
//
// Binary format (LTWB kind 3, the serving-restart artifact — see
// util/binio.hpp for the family-wide hardening contract): the checked
// 16-byte header, then
//   i32 n | u64 total_entries
//   u64 offsets[n+1]      + fnv1a   — n-proportional payload backing the
//                                     header's vertex count
//   i32 hub_ids[total]    + fnv1a
//   i64 to_hub[total]     + fnv1a
//   i64 from_hub[total]   + fnv1a
// Every section carries its own FNV-1a checksum, so bit rot inside a
// structurally plausible payload is rejected, not decoded; arrays stream in
// bounded chunks; and FlatLabeling::from_parts re-validates the structure
// (monotone offset table, per-span hub sorting) on arrival.
//
// LTWB kind 4 (version 2) appends the goal-directed pruning filter's
// persisted sidecar to the same store payload: i32 num_parts, then part_of /
// fwd_flags / bwd_flags / fwd_bound / bwd_bound sections, each checksummed.
// Kind 3 stays frozen at version 1; the sniffing reader accepts both.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "labeling/flat_labeling.hpp"
#include "labeling/label.hpp"
#include "labeling/label_filter.hpp"

namespace lowtw::labeling::io {

void write_labeling(std::ostream& os, const DistanceLabeling& labeling);
DistanceLabeling read_labeling(std::istream& is);

/// The frozen SoA store round-trips through the same format: a file written
/// from either representation reads back into either. The flat writer walks
/// the packed arrays directly; the flat reader packs the stream into the
/// SoA arrays without materializing per-vertex entry vectors.
void write_labeling(std::ostream& os, const FlatLabeling& labeling);
FlatLabeling read_flat_labeling(std::istream& is);

/// Binary round-trip for the frozen store (LTWB kind 3, checksummed
/// sections). Rejects corrupted headers, truncated payloads, and checksum
/// mismatches with CheckFailure — never returns a partial store.
void write_labeling_binary(std::ostream& os, const FlatLabeling& labeling);
FlatLabeling read_flat_labeling_binary(std::istream& is);

/// Kind-4 artifact (version 2): the kind-3 payload followed by the pruning
/// filter's persisted sidecar (partition + flags + bounds, each section
/// checksummed). The sidecar's array sizes must agree with the store
/// (part_of: n, bounds: total, flags: total·⌈parts/64⌉) — checked on write.
void write_labeling_binary(std::ostream& os, const FlatLabeling& labeling,
                           const FilterSidecar& sidecar);

/// Sniffing reader for both artifact generations: accepts kind 3 (version 1,
/// store only) and kind 4 (version 2, store + filter sidecar). When the
/// artifact carries a sidecar and `sidecar` is non-null it is filled;
/// a kind-3 file leaves it nullopt. Corruption anywhere — including inside
/// the sidecar sections — throws CheckFailure and returns nothing partial.
FlatLabeling read_flat_labeling_binary(
    std::istream& is, std::optional<FilterSidecar>* sidecar);

/// File-level artifact IO. Writes are crash-safe (util::atomic_write_file:
/// temp file + atomic rename), so a serving restart can never load a
/// truncated labeling.
void write_labeling_binary_file(const std::string& path,
                                const FlatLabeling& labeling);
void write_labeling_binary_file(const std::string& path,
                                const FlatLabeling& labeling,
                                const FilterSidecar& sidecar);
FlatLabeling read_flat_labeling_binary_file(const std::string& path);
FlatLabeling read_flat_labeling_binary_file(
    const std::string& path, std::optional<FilterSidecar>* sidecar);

}  // namespace lowtw::labeling::io
