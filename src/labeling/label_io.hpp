// Persistence for distance labelings.
//
// Distance labels are a *data structure deliverable*: once the CONGEST
// construction phase is done, each node's label can be exported, stored,
// shipped to a query service, and decoded with zero further communication.
// Format (text, line-oriented, '#' comments allowed):
//   labeling <n>
//   l <owner> <k>            — label of `owner` with k entries
//   e <hub> <to_hub> <from_hub>   — k entry lines (kInfinity spelled "inf")
#pragma once

#include <iosfwd>

#include "labeling/flat_labeling.hpp"
#include "labeling/label.hpp"

namespace lowtw::labeling::io {

void write_labeling(std::ostream& os, const DistanceLabeling& labeling);
DistanceLabeling read_labeling(std::istream& is);

/// The frozen SoA store round-trips through the same format: a file written
/// from either representation reads back into either. The flat writer walks
/// the packed arrays directly; the flat reader packs the stream into the
/// SoA arrays without materializing per-vertex entry vectors.
void write_labeling(std::ostream& os, const FlatLabeling& labeling);
FlatLabeling read_flat_labeling(std::istream& is);

}  // namespace lowtw::labeling::io
