#include "labeling/label.hpp"

#include <algorithm>

namespace lowtw::labeling {

using graph::kInfinity;
using graph::VertexId;
using graph::Weight;

const LabelEntry* Label::find(VertexId hub) const {
  auto it = std::lower_bound(
      entries.begin(), entries.end(), hub,
      [](const LabelEntry& e, VertexId h) { return e.hub < h; });
  if (it != entries.end() && it->hub == hub) return &*it;
  return nullptr;
}

void Label::set(VertexId hub, Weight to_hub, Weight from_hub) {
  auto it = std::lower_bound(
      entries.begin(), entries.end(), hub,
      [](const LabelEntry& e, VertexId h) { return e.hub < h; });
  if (it != entries.end() && it->hub == hub) {
    it->to_hub = to_hub;
    it->from_hub = from_hub;
  } else {
    entries.insert(it, LabelEntry{hub, to_hub, from_hub});
  }
}

Weight decode_distance(const Label& from, const Label& to) {
  // Merge-intersect the two sorted entry lists.
  Weight best = kInfinity;
  auto a = from.entries.begin();
  auto b = to.entries.begin();
  while (a != from.entries.end() && b != to.entries.end()) {
    if (a->hub < b->hub) {
      ++a;
    } else if (b->hub < a->hub) {
      ++b;
    } else {
      if (a->to_hub < kInfinity && b->from_hub < kInfinity) {
        best = std::min(best, a->to_hub + b->from_hub);
      }
      ++a;
      ++b;
    }
  }
  return best;
}

std::size_t DistanceLabeling::max_entries() const {
  std::size_t m = 0;
  for (const Label& l : labels) m = std::max(m, l.entries.size());
  return m;
}

double DistanceLabeling::mean_entries() const {
  if (labels.empty()) return 0;
  std::size_t total = 0;
  for (const Label& l : labels) total += l.entries.size();
  return static_cast<double>(total) / static_cast<double>(labels.size());
}

}  // namespace lowtw::labeling
