#include "labeling/distance_labeling.hpp"

#include <algorithm>
#include <queue>

#include "exec/worker_local.hpp"
#include "graph/csr.hpp"
#include "graph/workspace.hpp"
#include "util/check.hpp"

namespace lowtw::labeling {

using graph::Arc;
using graph::kInfinity;
using graph::kNoVertex;
using graph::VertexId;
using graph::Weight;

namespace {

Weight add_sat(Weight a, Weight b) {
  return (a >= kInfinity || b >= kInfinity) ? kInfinity : a + b;
}

/// Dense all-pairs matrix over a bag, indexed by position in the sorted bag.
/// k == 0 marks an empty slot (released or never built); buffers circulate
/// through BagMatrixPool instead of being allocated per node.
struct BagMatrix {
  Weight& at(std::size_t i, std::size_t j) { return d[i * k + j]; }
  Weight at(std::size_t i, std::size_t j) const { return d[i * k + j]; }
  void floyd_warshall() {
    for (std::size_t m = 0; m < k; ++m) {
      for (std::size_t i = 0; i < k; ++i) {
        Weight dim = at(i, m);
        if (dim >= kInfinity) continue;
        for (std::size_t j = 0; j < k; ++j) {
          Weight cand = add_sat(dim, at(m, j));
          if (cand < at(i, j)) at(i, j) = cand;
        }
      }
    }
  }
  std::size_t finite_edges() const {
    std::size_t c = 0;
    for (Weight w : d) c += (w < kInfinity) ? 1 : 0;
    return c;
  }
  std::size_t k = 0;
  std::vector<Weight> d;
};

/// Free list of matrix buffers (ROADMAP profiled target: the seed allocated
/// one BagMatrix per hierarchy node). Each pool belongs to one worker slot —
/// acquisition happens inside level tasks with no locking — and the level
/// barrier feeds released child matrices back round-robin while the workers
/// are idle.
class BagMatrixPool {
 public:
  /// Re-initializes `m` as a k×k matrix (∞ off-diagonal, 0 diagonal),
  /// reusing pooled capacity when available.
  void acquire(BagMatrix& m, std::size_t k) {
    if (m.d.capacity() == 0 && !free_.empty()) {
      m.d = std::move(free_.back());
      free_.pop_back();
    }
    m.k = k;
    m.d.assign(k * k, kInfinity);
    for (std::size_t i = 0; i < k; ++i) m.at(i, i) = 0;
    ++balance_;
  }

  void release(BagMatrix&& m) {
    m.k = 0;
    if (m.d.capacity() > 0 && free_.size() < 64) {
      free_.push_back(std::move(m.d));
    }
    m.d = {};
    --balance_;
  }

  /// Acquire-minus-release tally. Negative per pool is legal (the barrier
  /// recycles a matrix round-robin into whichever pool is next, not the one
  /// that acquired it); the *sum* across a build's pools at a level barrier
  /// must equal the matrices parked in node_rows for the next level — the
  /// pool-empty-at-barrier invariant checked after every phase B.
  int balance() const { return balance_; }

 private:
  std::vector<std::vector<Weight>> free_;
  int balance_ = 0;
};

/// One leaf's G_x as a local CSR: arcs grouped by tail (local ids), heads and
/// weights in two flat arrays. Built once per leaf and shared by all |gx|
/// Dijkstras — the seed rebuilt a vector-of-vectors adjacency per source.
/// Buffers are reused across leaves.
struct LocalCsr {
  std::vector<int> offsets;  ///< size n_local+1
  std::vector<int> heads;
  std::vector<Weight> weights;

  int num_arcs() const { return static_cast<int>(heads.size()); }

  void start(int n_local) {
    offsets.assign(static_cast<std::size_t>(n_local) + 1, 0);
    heads.clear();
    weights.clear();
    tail_ = 0;
  }
  /// Arcs must arrive grouped by non-decreasing local tail id.
  void push_arc(int tail, int head, Weight w) {
    while (tail_ < tail) offsets[++tail_] = num_arcs();
    heads.push_back(head);
    weights.push_back(w);
  }
  void finish() {
    const int n_local = static_cast<int>(offsets.size()) - 1;
    while (tail_ < n_local) offsets[++tail_] = num_arcs();
  }

 private:
  int tail_ = 0;
};

/// Dijkstra over a leaf-local CSR (used for leaf APSP).
void local_sssp(const LocalCsr& csr, int source, std::vector<Weight>& dist) {
  const auto n_local = csr.offsets.size() - 1;
  dist.assign(n_local, kInfinity);
  using Entry = std::pair<Weight, int>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
  dist[source] = 0;
  pq.emplace(0, source);
  while (!pq.empty()) {
    auto [d, u] = pq.top();
    pq.pop();
    if (d != dist[u]) continue;
    for (int e = csr.offsets[u]; e < csr.offsets[u + 1]; ++e) {
      const int v = csr.heads[e];
      const Weight w = csr.weights[e];
      if (d + w < dist[v]) {
        dist[v] = d + w;
        pq.emplace(d + w, v);
      }
    }
  }
}


/// Per-worker scratch for the level tasks (see exec::WorkerLocal's
/// contents-never-leak contract): the detached ledger, traversal scratch for
/// the tree-realized heights, the per-node vertex-subset maps — epoch masks
/// and reusable n-sized arrays, so no O(#nodes · n) churn — the leaf-local
/// CSR, and the matrix pool.
struct DlWorker {
  primitives::RoundLedger ledger;
  graph::TraversalWorkspace tw;
  graph::EpochMask in_boundary;
  std::vector<VertexId> local_of;
  std::vector<char> in_bag;
  std::vector<int> bag_pos;
  LocalCsr leaf_csr;
  std::vector<Weight> dist_fwd;
  BagMatrixPool mat_pool;
};

/// Core build. `skel_csr` is the frozen communication graph; it is only
/// consulted by the tree-realized engine's part statistics, so the
/// shortcut-model overload may pass nullptr and skip the conversion.
/// `pool` == nullptr runs every level's tasks inline on one worker slot.
///
/// Every level splits into two phases around the ledger barrier:
///   A. per-node assembly (leaf local APSP / internal H_x build +
///      floyd-warshall) — the expensive part, parallel across the level's
///      nodes, writing only the node's own node_rows slot and charging a
///      detached BranchRecord;
///   B. label application, serial in ascending node-id order — sibling bags
///      may share boundary vertices, and Label::set keeps the last writer,
///      so the write order is part of the output contract.
/// Assemblies read only the previous level's matrices and g, never labels,
/// so the A/B split is decision-identical to the seed's interleaved loop —
/// labels and charges are bit-identical for every pool size.
DlResult build_distance_labeling_impl(const graph::WeightedDigraph& g,
                                      const graph::CsrGraph* skel_csr,
                                      const td::Hierarchy& hierarchy,
                                      primitives::Engine& engine,
                                      exec::TaskPool* pool) {
  const int n = g.num_vertices();
  DlResult result;
  result.labeling.labels.resize(static_cast<std::size_t>(n));
  for (VertexId v = 0; v < n; ++v) result.labeling.labels[v].owner = v;
  const double rounds_before = engine.ledger().total();

  const bool need_stats =
      engine.mode() == primitives::EngineMode::kTreeRealized;
  LOWTW_CHECK_MSG(!need_stats || skel_csr != nullptr,
                  "tree-realized labeling build needs the skeleton");

  const int num_workers = pool ? pool->num_workers() : 1;
  exec::WorkerLocal<DlWorker> workers(num_workers);
  for (DlWorker& w : workers) {
    w.in_boundary.ensure(n);
    w.local_of.assign(static_cast<std::size_t>(n), kNoVertex);
    w.in_bag.assign(static_cast<std::size_t>(n), 0);
    w.bag_pos.assign(static_cast<std::size_t>(n), -1);
  }
  auto run_level = [&](int count, const std::function<void(int, int)>& fn) {
    if (pool) {
      pool->run(count, fn);
    } else {
      for (int i = 0; i < count; ++i) fn(i, 0);
    }
  };

  // Per-node all-pairs matrices over B_y (kept until the parent's H_x is
  // assembled, then recycled through the worker pools). A vertex can lie on
  // the border of several sibling components; its *label* keeps only the
  // last writer's value, so H_x must read each child's own matrix, not the
  // label.
  std::vector<BagMatrix> node_rows(hierarchy.nodes.size());
  std::vector<primitives::RoundLedger::BranchRecord> charges;
  int release_rr = 0;  ///< round-robin target for recycled matrices

  // Barrier-phase (main thread) bag maps.
  std::vector<char> in_bag(static_cast<std::size_t>(n), 0);
  std::vector<int> bag_pos(static_cast<std::size_t>(n), -1);

  auto levels = hierarchy.levels();
  // Bottom-up: deepest level first.
  for (auto level_it = levels.rbegin(); level_it != levels.rend(); ++level_it) {
    const std::vector<int>& level = *level_it;
    charges.resize(level.size());

    // -- Phase A: assembly tasks --------------------------------------------
    run_level(static_cast<int>(level.size()), [&](int ti, int wi) {
      DlWorker& w = workers[wi];
      const int xi = level[static_cast<std::size_t>(ti)];
      const td::HierarchyNode& node = hierarchy.nodes[xi];
      w.ledger.reset();
      primitives::Engine eng = engine.fork_onto(w.ledger);
      auto gx = node.gx_vertices();
      primitives::PartStats stats =
          need_stats
              ? primitives::part_stats(*skel_csr,
                                       std::span<const VertexId>(gx), w.tw)
              : primitives::PartStats{1, 0};
      BagMatrix& rows = node_rows[xi];

      if (node.leaf) {
        w.in_boundary.clear();
        for (VertexId v : node.boundary) w.in_boundary.set(v);
        // Leaf: broadcast G_x (h = arcs + vertices), local APSP.
        // G_x arcs: both endpoints in gx, minus boundary-boundary arcs —
        // collected by scanning gx's out-arcs, O(vol(gx)) instead of O(m).
        // The collection order differs from arc-id order, but local_sssp
        // distances (hence the rows and every charge) are order-invariant.
        for (std::size_t i = 0; i < gx.size(); ++i) {
          w.local_of[gx[i]] = static_cast<VertexId>(i);
        }
        // gx is iterated in local-id order, so arcs arrive grouped by tail
        // and the local CSR fills in one pass.
        w.leaf_csr.start(static_cast<int>(gx.size()));
        for (std::size_t i = 0; i < gx.size(); ++i) {
          for (graph::EdgeId e : g.out_arcs(gx[i])) {
            const Arc& a = g.arc(e);
            if (a.weight >= kInfinity) continue;
            if (w.local_of[a.head] == kNoVertex) continue;
            if (w.in_boundary.test(a.tail) && w.in_boundary.test(a.head)) {
              continue;
            }
            w.leaf_csr.push_arc(static_cast<int>(i), w.local_of[a.head],
                                a.weight);
          }
        }
        w.leaf_csr.finish();
        eng.bct(stats,
                static_cast<double>(w.leaf_csr.num_arcs() + gx.size()),
                "dl/leaf");
        w.mat_pool.acquire(rows, gx.size());
        for (std::size_t i = 0; i < gx.size(); ++i) {
          local_sssp(w.leaf_csr, static_cast<int>(i), w.dist_fwd);
          for (std::size_t j = 0; j < gx.size(); ++j) {
            rows.at(i, j) = w.dist_fwd[j];
          }
        }
        for (VertexId v : gx) w.local_of[v] = kNoVertex;
        w.ledger.snapshot(charges[static_cast<std::size_t>(ti)]);
        return;
      }

      // Internal node: assemble H_x on the (sorted) bag.
      const auto& bag = node.bag;
      const std::size_t k = bag.size();
      for (std::size_t i = 0; i < k; ++i) {
        w.in_bag[bag[i]] = 1;
        w.bag_pos[bag[i]] = static_cast<int>(i);
      }
      w.mat_pool.acquire(rows, k);
      // Direct arcs of G between bag vertices, via the bag's out-arcs
      // (O(vol(bag)) instead of a full arc scan; min-folding is
      // order-invariant).
      for (std::size_t i = 0; i < k; ++i) {
        for (graph::EdgeId e : g.out_arcs(bag[i])) {
          const Arc& a = g.arc(e);
          if (a.weight >= kInfinity) continue;
          if (a.tail == a.head) continue;
          if (w.in_bag[a.head]) {
            Weight& cell =
                rows.at(i, static_cast<std::size_t>(w.bag_pos[a.head]));
            cell = std::min(cell, a.weight);
          }
        }
      }
      // Child border distances: for each child i and u,v in its border
      // (= B_x ∩ V(G_{x·i})), read d_child(u,v) from the child's matrix
      // (built at the previous, deeper level — safely immutable here).
      for (int ci : node.children) {
        const auto& border = hierarchy.nodes[ci].boundary;
        const auto& child_bag = hierarchy.nodes[ci].bag;
        const BagMatrix& child_rows = node_rows[ci];
        LOWTW_CHECK(child_rows.k == child_bag.size());
        std::vector<std::size_t> child_pos(border.size());
        for (std::size_t bi = 0; bi < border.size(); ++bi) {
          auto it = std::lower_bound(child_bag.begin(), child_bag.end(),
                                     border[bi]);
          LOWTW_CHECK(it != child_bag.end() && *it == border[bi]);
          child_pos[bi] = static_cast<std::size_t>(it - child_bag.begin());
        }
        for (std::size_t bi = 0; bi < border.size(); ++bi) {
          for (std::size_t bj = 0; bj < border.size(); ++bj) {
            if (bi == bj) continue;
            Weight wt = child_rows.at(child_pos[bi], child_pos[bj]);
            Weight& cell =
                rows.at(static_cast<std::size_t>(w.bag_pos[border[bi]]),
                        static_cast<std::size_t>(w.bag_pos[border[bj]]));
            cell = std::min(cell, wt);
          }
        }
      }
      rows.floyd_warshall();
      eng.bct(stats, static_cast<double>(rows.finite_edges()), "dl/hx");
      for (std::size_t i = 0; i < k; ++i) {
        w.in_bag[bag[i]] = 0;
        w.bag_pos[bag[i]] = -1;
      }
      w.ledger.snapshot(charges[static_cast<std::size_t>(ti)]);
    });

    // -- Level barrier: ledger merge in ascending node order ----------------
    {
      auto par = engine.ledger().parallel();
      for (const auto& rec : charges) engine.ledger().merge_branch(rec);
    }

    // -- Phase B: label application, ascending node order -------------------
    for (int xi : level) {
      const td::HierarchyNode& node = hierarchy.nodes[xi];
      BagMatrix& rows = node_rows[xi];

      if (node.leaf) {
        auto gx = node.gx_vertices();
        for (std::size_t i = 0; i < gx.size(); ++i) {
          Label& lab = result.labeling.labels[gx[i]];
          for (std::size_t j = 0; j < gx.size(); ++j) {
            lab.set(gx[j], rows.at(i, j), rows.at(j, i));
          }
        }
        continue;
      }

      const auto& bag = node.bag;
      const std::size_t k = bag.size();
      for (std::size_t i = 0; i < k; ++i) {
        in_bag[bag[i]] = 1;
        bag_pos[bag[i]] = static_cast<int>(i);
      }
      // Bag vertices: exact d_{G_x} to every other bag vertex, from H_x.
      for (std::size_t i = 0; i < k; ++i) {
        Label& lab = result.labeling.labels[bag[i]];
        for (std::size_t j = 0; j < k; ++j) {
          lab.set(bag[j], rows.at(i, j), rows.at(j, i));
        }
      }
      // Component vertices: extend via the child border σ (Lemma 4).
      for (int ci : node.children) {
        const auto& border = hierarchy.nodes[ci].boundary;
        std::vector<std::size_t> border_pos;
        border_pos.reserve(border.size());
        for (VertexId s : border) {
          border_pos.push_back(static_cast<std::size_t>(bag_pos[s]));
        }
        for (VertexId u : hierarchy.nodes[ci].comp) {
          Label& lab = result.labeling.labels[u];
          // Read border distances first (σ ⊆ B_x: upserting would clobber).
          std::vector<Weight> to_s(border.size(), kInfinity);
          std::vector<Weight> from_s(border.size(), kInfinity);
          for (std::size_t si = 0; si < border.size(); ++si) {
            if (const LabelEntry* e = lab.find(border[si])) {
              to_s[si] = e->to_hub;
              from_s[si] = e->from_hub;
            }
          }
          std::vector<Weight> new_to(k, kInfinity);
          std::vector<Weight> new_from(k, kInfinity);
          for (std::size_t si = 0; si < border.size(); ++si) {
            const std::size_t sp = border_pos[si];
            if (to_s[si] < kInfinity) {
              for (std::size_t j = 0; j < k; ++j) {
                new_to[j] =
                    std::min(new_to[j], add_sat(to_s[si], rows.at(sp, j)));
              }
            }
            if (from_s[si] < kInfinity) {
              for (std::size_t j = 0; j < k; ++j) {
                new_from[j] =
                    std::min(new_from[j], add_sat(rows.at(j, sp), from_s[si]));
              }
            }
          }
          for (std::size_t j = 0; j < k; ++j) {
            lab.set(bag[j], new_to[j], new_from[j]);
          }
        }
      }
      for (std::size_t i = 0; i < k; ++i) {
        in_bag[bag[i]] = 0;
        bag_pos[bag[i]] = -1;
      }
      // This node's matrix stays for the parent; the children's are
      // consumed — recycle their buffers across the (idle) worker pools.
      for (int ci : node.children) {
        workers[release_rr].mat_pool.release(
            std::move(node_rows[ci]));
        release_rr = (release_rr + 1) % num_workers;
      }
    }

    // Pool-empty-at-barrier: with this level's phase B done, every deeper
    // matrix has been released (each deeper node's parent sits on this
    // level), so the only live matrices are this level's own — one per
    // node, parked in node_rows for the next (shallower) level.
    {
      int live = 0;
      for (DlWorker& w : workers) live += w.mat_pool.balance();
      LOWTW_CHECK_MSG(live == static_cast<int>(level.size()),
                      "BagMatrixPool leak at level barrier: " << live
                          << " live matrices vs " << level.size()
                          << " level nodes");
    }
  }

  result.rounds = engine.ledger().total() - rounds_before;
  for (const Label& l : result.labeling.labels) {
    result.max_label_entries = std::max(result.max_label_entries,
                                        l.entries.size());
    result.max_label_bits = std::max(result.max_label_bits, l.size_bits());
  }
  // Freeze once: every downstream decode (SSSP, girth, CDL) runs on the SoA
  // store; the AoS builder form is kept for persistence and incremental use.
  result.flat.assign(result.labeling);
  return result;
}

}  // namespace

DlResult build_distance_labeling(const graph::WeightedDigraph& g,
                                 const graph::Graph& skeleton,
                                 const td::Hierarchy& hierarchy,
                                 primitives::Engine& engine) {
  LOWTW_CHECK(skeleton.num_vertices() == g.num_vertices());
  if (engine.mode() == primitives::EngineMode::kTreeRealized) {
    graph::CsrGraph csr(skeleton);
    return build_distance_labeling_impl(g, &csr, hierarchy, engine, nullptr);
  }
  return build_distance_labeling_impl(g, nullptr, hierarchy, engine, nullptr);
}

DlResult build_distance_labeling(const graph::WeightedDigraph& g,
                                 const graph::CsrGraph& skeleton,
                                 const td::Hierarchy& hierarchy,
                                 primitives::Engine& engine) {
  LOWTW_CHECK(skeleton.num_vertices() == g.num_vertices());
  return build_distance_labeling_impl(g, &skeleton, hierarchy, engine,
                                      nullptr);
}

DlResult build_distance_labeling(const graph::WeightedDigraph& g,
                                 const graph::Graph& skeleton,
                                 const td::Hierarchy& hierarchy,
                                 primitives::Engine& engine,
                                 exec::TaskPool& pool) {
  LOWTW_CHECK(skeleton.num_vertices() == g.num_vertices());
  if (engine.mode() == primitives::EngineMode::kTreeRealized) {
    graph::CsrGraph csr(skeleton);
    return build_distance_labeling_impl(g, &csr, hierarchy, engine, &pool);
  }
  return build_distance_labeling_impl(g, nullptr, hierarchy, engine, &pool);
}

DlResult build_distance_labeling(const graph::WeightedDigraph& g,
                                 const graph::CsrGraph& skeleton,
                                 const td::Hierarchy& hierarchy,
                                 primitives::Engine& engine,
                                 exec::TaskPool& pool) {
  LOWTW_CHECK(skeleton.num_vertices() == g.num_vertices());
  return build_distance_labeling_impl(g, &skeleton, hierarchy, engine, &pool);
}

SsspResult sssp_from_labels(const FlatLabeling& labeling, VertexId source,
                            int diameter, primitives::Engine& engine) {
  SsspResult out;
  const auto n = static_cast<std::size_t>(labeling.num_vertices());
  out.dist.assign(n, kInfinity);
  out.dist_to.assign(n, kInfinity);
  const double rounds_before = engine.ledger().total();
  // Pipelined flood of the source label: D + |label| rounds (3 words per
  // entry, one entry per message).
  engine.rounds(static_cast<double>(diameter) +
                    3.0 * static_cast<double>(labeling.entries(source)),
                "sssp/label_flood");
  labeling.decode_one_vs_all(source, out.dist, out.dist_to);
  out.rounds = engine.ledger().total() - rounds_before;
  return out;
}

SsspResult sssp_from_labels(QueryEngine& queries, VertexId source,
                            int diameter, primitives::Engine& engine) {
  SsspResult out;
  const auto n = static_cast<std::size_t>(queries.labels().num_vertices());
  out.dist.resize(n);
  out.dist_to.resize(n);
  const double rounds_before = engine.ledger().total();
  engine.rounds(static_cast<double>(diameter) +
                    3.0 * static_cast<double>(queries.labels().entries(source)),
                "sssp/label_flood");
  queries.one_vs_all(source, out.dist, out.dist_to);
  out.rounds = engine.ledger().total() - rounds_before;
  return out;
}

namespace {

/// Exact content comparison against a cached frozen form: O(total entries)
/// pure reads — the cheap half of a freeze (no offset build, no SoA
/// writes, no allocation) — and no false positives, unlike a hash: this is
/// an exact-distance API, so the cache must never serve a stale store.
bool matches_frozen(const DistanceLabeling& labeling,
                    const FlatLabeling& flat) {
  if (flat.num_vertices() !=
      static_cast<int>(labeling.labels.size())) {
    return false;
  }
  for (std::size_t v = 0; v < labeling.labels.size(); ++v) {
    const Label& l = labeling.labels[v];
    auto hubs = flat.hubs(static_cast<VertexId>(v));
    auto to = flat.to_hub(static_cast<VertexId>(v));
    auto from = flat.from_hub(static_cast<VertexId>(v));
    if (l.entries.size() != hubs.size()) return false;
    for (std::size_t i = 0; i < hubs.size(); ++i) {
      const LabelEntry& e = l.entries[i];
      if (e.hub != hubs[i] || e.to_hub != to[i] || e.from_hub != from[i]) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

SsspResult sssp_from_labels(const DistanceLabeling& labeling, VertexId source,
                            int diameter, primitives::Engine& engine) {
  // Cached conversion: this legacy entry point used to freeze a fresh
  // FlatLabeling on every call. One slot per thread, validated by exact
  // content comparison: repeated queries against an unchanged labeling
  // reuse the frozen store — and keep its generation stable, so the query
  // engine's index survives across calls too — while any mutation (or a
  // different labeling) re-freezes into the same buffers. The validation
  // pass is O(total entries) and unavoidable for a mutable input with no
  // version stamp; callers on the serving path should hold a FlatLabeling
  // or QueryEngine directly (Solver does).
  struct LegacyCache {
    bool filled = false;
    FlatLabeling flat;
    QueryEngine queries;
  };
  thread_local LegacyCache cache;
  if (!cache.filled || !matches_frozen(labeling, cache.flat)) {
    cache.flat.assign(labeling);
    cache.queries.bind(cache.flat);
    cache.filled = true;
  }
  return sssp_from_labels(cache.queries, source, diameter, engine);
}

SsspBatchResult sssp_batch_from_labels(QueryEngine& queries,
                                       std::span<const VertexId> sources,
                                       int diameter,
                                       primitives::Engine& engine) {
  SsspBatchResult out;
  out.sources.assign(sources.begin(), sources.end());
  const auto n = static_cast<std::size_t>(queries.labels().num_vertices());
  out.stride = n;
  out.dist.resize(sources.size() * n);
  out.dist_to.resize(sources.size() * n);
  const double rounds_before = engine.ledger().total();
  // Pipelined batch flood: the sources' labels stream back-to-back over the
  // same spanning structure, so the diameter term is paid once for the
  // whole batch and each flooded entry costs its 3 words.
  double flood_entries = 0;
  for (VertexId s : sources) {
    flood_entries += static_cast<double>(queries.labels().entries(s));
  }
  if (!sources.empty()) {
    engine.rounds(static_cast<double>(diameter) + 3.0 * flood_entries,
                  "sssp/batch_flood");
  }
  queries.one_vs_all_batch(sources, out.dist, out.dist_to);
  out.rounds = engine.ledger().total() - rounds_before;
  return out;
}

}  // namespace lowtw::labeling
