// Distributed distance-labeling construction (Section 4.2, Theorem 2).
//
// Bottom-up recursion over the decomposition hierarchy:
//   * leaf x: the whole (small) graph G_x is broadcast inside the part and
//     each node solves APSP locally — its label holds distances to all of
//     V(G_x) = B_x;
//   * internal x: the auxiliary graph H_x on B_x is assembled from the
//     children's fresh border distances (plus direct G arcs between bag
//     vertices), broadcast (BCT(h), h = |E(H_x)|), and each node u extends
//     its label to the new hubs B_x via Lemma 4:
//         d_{G_x}(u, b) = min over s ∈ σ of d_child(u, s) + d_{H_x}(s, b),
//     where σ = B_x ∩ V(child(u)) is u's child border.
//
// Hub entries are exact in G_y at the level y of the hub's bag and never
// degrade below true d_G; the decoder is exact by the witness argument
// documented in label.hpp (Lemma 2; verified against Dijkstra in tests).
//
// Arcs with weight ≥ kInfinity are treated as absent, which lets callers
// mask edges (the matching divide-and-conquer of Section 6 masks all edges
// incident to not-yet-inserted separator vertices, exactly as Appendix E
// prescribes).
#pragma once

#include "exec/task_pool.hpp"
#include "graph/csr.hpp"
#include "graph/digraph.hpp"
#include "labeling/flat_labeling.hpp"
#include "labeling/label.hpp"
#include "labeling/query_plane.hpp"
#include "primitives/engine.hpp"
#include "td/builder.hpp"

namespace lowtw::labeling {

struct DlResult {
  DistanceLabeling labeling;     ///< builder AoS form (persistence, tests)
  FlatLabeling flat;             ///< frozen SoA query store (hot decode path)
  double rounds = 0;             ///< ledger delta for this build
  std::size_t max_label_entries = 0;
  std::size_t max_label_bits = 0;
};

/// Builds labels for the weighted directed multigraph `g` over the
/// decomposition `hierarchy` of its skeleton. `skeleton` must be the
/// communication graph the hierarchy was built on.
DlResult build_distance_labeling(const graph::WeightedDigraph& g,
                                 const graph::Graph& skeleton,
                                 const td::Hierarchy& hierarchy,
                                 primitives::Engine& engine);

/// Same build over a pre-frozen CSR skeleton — callers that rebuild
/// labelings in a loop (CDL trials) freeze the communication graph once and
/// skip the per-call conversion. Identical labels and charges.
DlResult build_distance_labeling(const graph::WeightedDigraph& g,
                                 const graph::CsrGraph& skeleton,
                                 const td::Hierarchy& hierarchy,
                                 primitives::Engine& engine);

/// Level-parallel build: each level's per-node assemblies (leaf APSP,
/// internal H_x floyd-warshall) run as pool tasks with per-worker scratch
/// and detached ledger records; label writes — the only cross-node shared
/// state, since sibling bags may share boundary vertices — are applied at
/// the level barrier in ascending node-id order. Labels, charges, and every
/// DlResult field are bit-identical to the sequential overloads for every
/// pool size (the labeling recursion draws no randomness).
DlResult build_distance_labeling(const graph::WeightedDigraph& g,
                                 const graph::Graph& skeleton,
                                 const td::Hierarchy& hierarchy,
                                 primitives::Engine& engine,
                                 exec::TaskPool& pool);
DlResult build_distance_labeling(const graph::WeightedDigraph& g,
                                 const graph::CsrGraph& skeleton,
                                 const td::Hierarchy& hierarchy,
                                 primitives::Engine& engine,
                                 exec::TaskPool& pool);

struct SsspResult {
  std::vector<graph::Weight> dist;     ///< d(source → v)
  std::vector<graph::Weight> dist_to;  ///< d(v → source)
  double rounds = 0;
};

/// SSSP by label broadcast (Section 1.2): the source floods its own label
/// (pipelined, D + |label| rounds); every node decodes both directions
/// locally via the batch one-vs-all kernel.
SsspResult sssp_from_labels(const FlatLabeling& labeling,
                            graph::VertexId source, int diameter,
                            primitives::Engine& engine);

/// Same charges, decoded through the batched query plane: the engine's
/// inverted hub index answers the one-vs-all with postings merges (built on
/// first use, reused across calls — the decoded distances are bit-identical
/// to the FlatLabeling overload). This is what Solver::sssp routes through.
SsspResult sssp_from_labels(QueryEngine& queries, graph::VertexId source,
                            int diameter, primitives::Engine& engine);

/// Convenience wrapper over a builder labeling: freezes, then decodes.
/// The conversion is cached per thread and validated by exact content
/// comparison — repeated queries against an unchanged labeling skip the
/// freeze instead of rebuilding the SoA store every call, and a mutated
/// labeling always re-freezes (never a stale hit). Callers holding a
/// DlResult should pass `dl.flat` directly.
SsspResult sssp_from_labels(const DistanceLabeling& labeling,
                            graph::VertexId source, int diameter,
                            primitives::Engine& engine);

/// Batched exact SSSP: row i (stride = n) answers sources[i], both
/// directions, matching sssp_from_labels(sources[i]) bit for bit.
struct SsspBatchResult {
  std::vector<graph::VertexId> sources;
  std::size_t stride = 0;                  ///< row length (= num vertices)
  std::vector<graph::Weight> dist;         ///< dist[i·stride + v] = d(sᵢ → v)
  std::vector<graph::Weight> dist_to;      ///< d(v → sᵢ)
  double rounds = 0;

  std::span<const graph::Weight> dist_row(std::size_t i) const {
    return {dist.data() + i * stride, stride};
  }
  std::span<const graph::Weight> dist_to_row(std::size_t i) const {
    return {dist_to.data() + i * stride, stride};
  }
};

/// The many-query serving shape: the sources' label floods pipeline over
/// the same spanning structure, so the batch charges one diameter term plus
/// 3 words per flooded entry (D + 3·Σᵢ|label(sᵢ)| rounds) — cheaper than
/// |sources| independent floods. Decode fans the sources across the
/// engine's pool, one inverted one-vs-all row each; results are
/// bit-identical for every worker count.
SsspBatchResult sssp_batch_from_labels(QueryEngine& queries,
                                       std::span<const graph::VertexId> sources,
                                       int diameter,
                                       primitives::Engine& engine);

}  // namespace lowtw::labeling
