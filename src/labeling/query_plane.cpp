#include "labeling/query_plane.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace lowtw::labeling {

using graph::kInfinity;
using graph::VertexId;
using graph::Weight;

namespace {

/// Pairs per pairwise task: coarse enough that the mutex-guarded cursor of
/// TaskPool never shows, fine enough to balance skewed span lengths.
constexpr std::size_t kPairChunk = 256;

/// Candidates the unfiltered one-vs-all folds for `source`: every posting
/// of every direction-live hub (the filtered kernel's entries_touched
/// counts the flagged subset of exactly these).
std::uint64_t unfiltered_row_touches(const InvertedHubIndex& idx,
                                     const FlatLabeling& labels,
                                     VertexId source) {
  auto hubs = labels.hubs(source);
  auto to = labels.to_hub(source);
  auto from = labels.from_hub(source);
  std::uint64_t touches = 0;
  for (std::size_t i = 0; i < hubs.size(); ++i) {
    const auto run = static_cast<std::uint64_t>(idx.postings(hubs[i]));
    if (to[i] < kInfinity) touches += run;
    if (from[i] < kInfinity) touches += run;
  }
  return touches;
}

}  // namespace

QueryEngineStats QueryEngine::stats() const {
  QueryEngineStats out;
  out.queries = stat_queries_.load(std::memory_order_relaxed);
  out.filtered_queries = stat_filtered_.load(std::memory_order_relaxed);
  out.entries_touched = stat_entries_.load(std::memory_order_relaxed);
  out.postings_runs_skipped =
      stat_runs_skipped_.load(std::memory_order_relaxed);
  out.row_cache_hits = stat_row_hits_.load(std::memory_order_relaxed);
  return out;
}

void QueryEngine::reset_stats() {
  stat_queries_.store(0, std::memory_order_relaxed);
  stat_filtered_.store(0, std::memory_order_relaxed);
  stat_entries_.store(0, std::memory_order_relaxed);
  stat_runs_skipped_.store(0, std::memory_order_relaxed);
  stat_row_hits_.store(0, std::memory_order_relaxed);
}

FlatLabeling::DecodeScratch& QueryEngine::pinned_scratch(
    int worker, VertexId source, FlatLabeling::PinSide side) {
  PinSlab& slab = slabs_[static_cast<std::size_t>(worker)];
  const std::size_t want = std::max<std::size_t>(1, row_cache_slots_);
  if (slab.slots.size() != want) slab.slots.resize(want);
  const FlatLabeling& labels = *labels_;
  const bool want_to = side != FlatLabeling::PinSide::kFrom;
  const bool want_from = side != FlatLabeling::PinSide::kTo;
  PinSlab::Slot* victim = &slab.slots[0];
  if (row_cache_slots_ > 0) {
    for (PinSlab::Slot& slot : slab.slots) {
      const FlatLabeling::DecodeScratch& sc = slot.scratch;
      // A slot is reusable only for the exact (store, generation, source)
      // it was pinned against with the needed sides scattered — the same
      // validation pin() itself applies, so a re-frozen or swapped store
      // can never replay a stale row (FlatLabeling generations are
      // process-globally unique: no ABA across snapshot retirement).
      if (sc.owner == &labels && sc.owner_generation == labels.generation() &&
          sc.pinned == source && (!want_to || sc.to_valid) &&
          (!want_from || sc.from_valid)) {
        slot.tick = ++slab.clock;
        stat_row_hits_.fetch_add(1, std::memory_order_relaxed);
        return slot.scratch;
      }
      if (slot.tick < victim->tick) victim = &slot;
    }
  }
  labels.pin(source, victim->scratch, side);
  victim->tick = ++slab.clock;
  return victim->scratch;
}

const char* to_string(QueryStatus status) {
  switch (status) {
    case QueryStatus::kOk:
      return "ok";
    case QueryStatus::kUnbound:
      return "unbound";
    case QueryStatus::kStaleGeneration:
      return "stale-generation";
  }
  return "?";
}

int QueryEngine::fan_workers() const {
  return pool_ != nullptr ? pool_->num_workers() : 1;
}

const InvertedHubIndex* QueryEngine::checked_index(QueryStatus& status) {
  if (labels_ == nullptr) {
    status = QueryStatus::kUnbound;
    return nullptr;
  }
  if (external_index_ != nullptr) {
    // External (snapshot) mode: the index is owned elsewhere and must match
    // the bound store's current generation — a mismatch is the serving
    // layer's retryable stale verdict, never silently decoded around.
    if (!external_index_->matches(*labels_)) {
      status = QueryStatus::kStaleGeneration;
      return nullptr;
    }
    status = QueryStatus::kOk;
    return external_index_;
  }
  if (!index_.matches(*labels_)) index_.assign(*labels_);
  status = QueryStatus::kOk;
  return &index_;
}

const InvertedHubIndex& QueryEngine::index() {
  QueryStatus status = QueryStatus::kOk;
  const InvertedHubIndex* idx = checked_index(status);
  LOWTW_CHECK_MSG(idx != nullptr,
                  "QueryEngine::index(): " << to_string(status));
  return *idx;
}

QueryStatus QueryEngine::try_one_vs_all(VertexId source,
                                        std::span<Weight> out_dist,
                                        std::span<Weight> out_dist_to) {
  QueryStatus status = QueryStatus::kOk;
  const InvertedHubIndex* idx = checked_index(status);
  if (idx == nullptr) return status;
  PruneCounters counters;
  const LabelFilter* filter = active_filter();
  if (filter != nullptr) {
    filter->one_vs_all(source, out_dist, out_dist_to, &counters);
  } else {
    idx->one_vs_all(source, out_dist, out_dist_to);
    counters.entries_touched = unfiltered_row_touches(*idx, *labels_, source);
  }
  note_query(filter != nullptr, counters);
  return QueryStatus::kOk;
}

QueryStatus QueryEngine::try_one_vs_all_batch(
    std::span<const VertexId> sources, std::span<Weight> out_dist,
    std::span<Weight> out_dist_to) {
  QueryStatus status = QueryStatus::kOk;
  const InvertedHubIndex* idx = checked_index(status);  // gate before the fan
  if (idx == nullptr) return status;
  const auto n = static_cast<std::size_t>(idx->num_vertices());
  LOWTW_CHECK(out_dist.size() == sources.size() * n);
  LOWTW_CHECK(out_dist_to.size() == sources.size() * n);
  const LabelFilter* filter = active_filter();
  auto decode_row = [&](int i) {
    const auto row = static_cast<std::size_t>(i) * n;
    const VertexId source = sources[static_cast<std::size_t>(i)];
    PruneCounters counters;
    if (filter != nullptr) {
      filter->one_vs_all(source, out_dist.subspan(row, n),
                         out_dist_to.subspan(row, n), &counters);
    } else {
      idx->one_vs_all(source, out_dist.subspan(row, n),
                      out_dist_to.subspan(row, n));
      counters.entries_touched =
          unfiltered_row_touches(*idx, *labels_, source);
    }
    note_query(filter != nullptr, counters);
  };
  if (pool_ != nullptr && sources.size() > 1) {
    // Tasks only read the index/filter and write their own row —
    // bit-identical to the serial loop for every worker count.
    pool_->run(static_cast<int>(sources.size()),
               [&](int i, int /*worker*/) { decode_row(i); });
  } else {
    for (std::size_t i = 0; i < sources.size(); ++i) {
      decode_row(static_cast<int>(i));
    }
  }
  return QueryStatus::kOk;
}

void QueryEngine::one_vs_all(VertexId source, std::span<Weight> out_dist,
                             std::span<Weight> out_dist_to) {
  const QueryStatus status = try_one_vs_all(source, out_dist, out_dist_to);
  LOWTW_CHECK_MSG(status == QueryStatus::kOk,
                  "QueryEngine::one_vs_all: " << to_string(status));
}

void QueryEngine::one_vs_all_batch(std::span<const VertexId> sources,
                                   std::span<Weight> out_dist,
                                   std::span<Weight> out_dist_to) {
  const QueryStatus status =
      try_one_vs_all_batch(sources, out_dist, out_dist_to);
  LOWTW_CHECK_MSG(status == QueryStatus::kOk,
                  "QueryEngine::one_vs_all_batch: " << to_string(status));
}

QueryStatus QueryEngine::try_run(QueryBatch& batch) {
  if (labels_ == nullptr) return QueryStatus::kUnbound;
  if (external_index_ != nullptr && !external_index_->matches(*labels_)) {
    return QueryStatus::kStaleGeneration;  // torn snapshot: whole batch stale
  }
  const FlatLabeling& labels = *labels_;
  batch.results.resize(batch.targets.size());
  slabs_.resize(static_cast<std::size_t>(fan_workers()));
  const LabelFilter* filter = active_filter();
  auto decode_group = [&](int i, int worker) {
    const auto si = static_cast<std::size_t>(i);
    const std::size_t begin = batch.run_begin(si);
    const std::size_t end = batch.run_end(si);
    if (begin == end) return;
    PruneCounters counters;
    if (filter != nullptr) {
      // Filtered groups go through the flag/bound merge decode: the pinned
      // gather folds every span element and cannot consult per-entry flags.
      for (std::size_t j = begin; j < end; ++j) {
        batch.results[j] =
            filter->decode(batch.sources[si], batch.targets[j], &counters);
      }
    } else {
      // Row cache: a source recently pinned by this worker is reused as-is
      // (the slab slot holds exactly the bytes a fresh pin would scatter).
      const FlatLabeling::DecodeScratch& scratch = pinned_scratch(
          worker, batch.sources[si], FlatLabeling::PinSide::kTo);
      // Lookahead prefetch hides the span-start miss of the next target
      // while the current gather runs (same idiom as the girth arc loop).
      if (begin < end) labels.prefetch_target(batch.targets[begin]);
      for (std::size_t j = begin; j < end; ++j) {
        if (j + 1 < end) labels.prefetch_target(batch.targets[j + 1]);
        batch.results[j] =
            labels.decode_from_pinned(scratch, batch.targets[j]);
        counters.entries_touched += labels.entries(batch.targets[j]);
      }
    }
    add_touches(counters);
  };
  if (pool_ != nullptr && batch.num_sources() > 1) {
    pool_->run(static_cast<int>(batch.num_sources()), decode_group);
  } else {
    for (std::size_t i = 0; i < batch.num_sources(); ++i) {
      decode_group(static_cast<int>(i), 0);
    }
  }
  stat_queries_.fetch_add(1, std::memory_order_relaxed);
  if (filter != nullptr) {
    stat_filtered_.fetch_add(1, std::memory_order_relaxed);
  }
  return QueryStatus::kOk;
}

void QueryEngine::run(QueryBatch& batch) {
  const QueryStatus status = try_run(batch);
  LOWTW_CHECK_MSG(status == QueryStatus::kOk,
                  "QueryEngine::run: " << to_string(status));
}

void QueryEngine::many_to_many(std::span<const VertexId> sources,
                               std::span<const VertexId> targets,
                               std::span<Weight> out) {
  LOWTW_CHECK_MSG(labels_ != nullptr, "QueryEngine used before bind()");
  LOWTW_CHECK(out.size() == sources.size() * targets.size());
  const FlatLabeling& labels = *labels_;
  slabs_.resize(static_cast<std::size_t>(fan_workers()));
  const LabelFilter* filter = active_filter();
  auto decode_row = [&](int i, int worker) {
    const auto row = static_cast<std::size_t>(i) * targets.size();
    const VertexId source = sources[static_cast<std::size_t>(i)];
    PruneCounters counters;
    if (filter != nullptr) {
      for (std::size_t j = 0; j < targets.size(); ++j) {
        out[row + j] = filter->decode(source, targets[j], &counters);
      }
    } else {
      const FlatLabeling::DecodeScratch& scratch =
          pinned_scratch(worker, source, FlatLabeling::PinSide::kTo);
      for (std::size_t j = 0; j < targets.size(); ++j) {
        if (j + 1 < targets.size()) labels.prefetch_target(targets[j + 1]);
        out[row + j] = labels.decode_from_pinned(scratch, targets[j]);
        counters.entries_touched += labels.entries(targets[j]);
      }
    }
    add_touches(counters);
  };
  if (pool_ != nullptr && sources.size() > 1) {
    pool_->run(static_cast<int>(sources.size()), decode_row);
  } else {
    for (std::size_t i = 0; i < sources.size(); ++i) {
      decode_row(static_cast<int>(i), 0);
    }
  }
  stat_queries_.fetch_add(1, std::memory_order_relaxed);
  if (filter != nullptr) {
    stat_filtered_.fetch_add(1, std::memory_order_relaxed);
  }
}

QueryStatus QueryEngine::try_pairwise(std::span<const QueryPair> pairs,
                                      std::span<Weight> out) {
  if (labels_ == nullptr) return QueryStatus::kUnbound;
  if (external_index_ != nullptr && !external_index_->matches(*labels_)) {
    return QueryStatus::kStaleGeneration;  // torn snapshot: whole batch stale
  }
  LOWTW_CHECK(out.size() == pairs.size());
  const FlatLabeling& labels = *labels_;
  const LabelFilter* filter = active_filter();
  auto decode_chunk = [&](std::size_t begin, std::size_t end) {
    PruneCounters counters;
    for (std::size_t i = begin; i < end; ++i) {
      if (i + 1 < end) {
        labels.prefetch_source(pairs[i + 1].u);
        labels.prefetch_target(pairs[i + 1].v);
      }
      if (filter != nullptr) {
        out[i] = filter->decode(pairs[i].u, pairs[i].v, &counters);
      } else {
        out[i] = labels.decode(pairs[i].u, pairs[i].v);
        counters.entries_touched += std::min(labels.entries(pairs[i].u),
                                             labels.entries(pairs[i].v));
      }
    }
    add_touches(counters);
  };
  const std::size_t chunks = (pairs.size() + kPairChunk - 1) / kPairChunk;
  if (pool_ != nullptr && chunks > 1) {
    pool_->run(static_cast<int>(chunks), [&](int c, int /*worker*/) {
      const std::size_t begin = static_cast<std::size_t>(c) * kPairChunk;
      decode_chunk(begin, std::min(begin + kPairChunk, pairs.size()));
    });
  } else {
    decode_chunk(0, pairs.size());
  }
  stat_queries_.fetch_add(1, std::memory_order_relaxed);
  if (filter != nullptr) {
    stat_filtered_.fetch_add(1, std::memory_order_relaxed);
  }
  return QueryStatus::kOk;
}

void QueryEngine::pairwise(std::span<const QueryPair> pairs,
                           std::span<Weight> out) {
  const QueryStatus status = try_pairwise(pairs, out);
  LOWTW_CHECK_MSG(status == QueryStatus::kOk,
                  "QueryEngine::pairwise: " << to_string(status));
}

}  // namespace lowtw::labeling
