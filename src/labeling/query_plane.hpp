// The batched query plane: every distance the codebase answers from labels
// goes through one of three batch shapes instead of one-call-at-a-time
// scalar decodes.
//
//   one_vs_all   — a source against every vertex: sequential postings merges
//                  over the InvertedHubIndex (see inverted_index.hpp);
//                  batches of sources fan across the TaskPool, one output
//                  row per source.
//   many_to_many — each source against its own target group (QueryBatch):
//                  the source is pinned once (dense hub scatter) and every
//                  target is a branchless SIMD gather-min over its span —
//                  the girth cycle-fold shape.
//   pairwise     — independent (u, v) pairs: merge/gallop decodes with the
//                  next pair's spans prefetched — the CDL distance-check
//                  shape (matching walk verification, girth diagonal).
//
// Determinism contract (same as the exec layer, ARCHITECTURE.md): decodes
// are pure functions of the frozen store, every task writes only its own
// output slots, and per-worker state is scratch whose contents never leak —
// so results are bit-identical for every pool size including none. The
// engine charges no rounds: decode is free in the ledger model ("rounds are
// sacred, wall time is the optimization target"); callers charge floods and
// aggregations as before.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "exec/task_pool.hpp"
#include "labeling/flat_labeling.hpp"
#include "labeling/inverted_index.hpp"
#include "labeling/label_filter.hpp"
#include "util/check.hpp"

namespace lowtw::labeling {

/// One independent (u, v) distance query: result = dec(u, v) = d(u → v).
struct QueryPair {
  graph::VertexId u = graph::kNoVertex;
  graph::VertexId v = graph::kNoVertex;
};

/// A reusable grouped many-to-many request: sources with per-source target
/// runs, results parallel to `targets`. Buffers keep their capacity across
/// clear(), so loop callers (the girth fold) allocate only on first use.
struct QueryBatch {
  std::vector<graph::VertexId> sources;
  std::vector<std::size_t> starts;        ///< target-run start per source
  std::vector<graph::VertexId> targets;
  std::vector<graph::Weight> results;     ///< results[j] = dec(src_of_j, targets[j])

  void clear() {
    sources.clear();
    starts.clear();
    targets.clear();
    results.clear();
  }
  /// Opens a new source group; subsequent add_target calls append to it.
  void add_source(graph::VertexId u) {
    sources.push_back(u);
    starts.push_back(targets.size());
  }
  void add_target(graph::VertexId v) { targets.push_back(v); }

  std::size_t num_sources() const { return sources.size(); }
  std::size_t num_queries() const { return targets.size(); }
  std::size_t run_begin(std::size_t i) const { return starts[i]; }
  std::size_t run_end(std::size_t i) const {
    return i + 1 < starts.size() ? starts[i + 1] : targets.size();
  }
};

/// Typed outcome of the try_* query entry points — the serving layer's
/// contract: a stale snapshot is an expected, retryable condition, not an
/// invariant violation, so it must surface as a value the caller can branch
/// on (retry against the fresh snapshot, or degrade to the flat decode)
/// rather than as a thrown CheckFailure.
enum class QueryStatus {
  kOk = 0,
  /// Engine used before bind().
  kUnbound,
  /// The bound (externally supplied) index was not built from the bound
  /// store at its current generation: answering would decode stale weights.
  /// Outputs are untouched; rebind to a fresh snapshot and retry.
  kStaleGeneration,
};

const char* to_string(QueryStatus status);

/// Monotonic per-engine query/pruning counters (QueryEngine::stats), also
/// surfaced through the daemon STATS verb. entries_touched counts the label
/// entries whose weights each kernel folded into its min — postings relaxed
/// on the one-vs-all paths, span elements gathered on the pinned batch
/// paths, hub matches folded on the merge paths (the unfiltered pairwise
/// count is the cheap upper bound min(|label(u)|, |label(v)|)). With a
/// filter attached the kernels fold only what survived pruning, so the
/// unfiltered / filtered ratio is the observable pruning win.
/// postings_runs_skipped counts whole (hub, part) postings segments retired
/// by a clear part flag.
struct QueryEngineStats {
  std::uint64_t queries = 0;           ///< try_* calls answered kOk
  std::uint64_t filtered_queries = 0;  ///< of those, served through the filter
  std::uint64_t entries_touched = 0;
  std::uint64_t postings_runs_skipped = 0;
  /// Batch sources answered from a retained pin slab slot (set_row_cache):
  /// each hit skips one dense pin scatter. 0 when the row cache is off.
  std::uint64_t row_cache_hits = 0;
};

/// Executes batches against one frozen store. Holds the lazily built
/// inverted index (rebuilt when the bound store re-freezes — generation
/// checked) and per-worker pin scratch. Rebindable: loop callers that
/// re-freeze a store every iteration (CDL rebuilds) keep one engine and
/// bind() per iteration; pairwise/many_to_many never pay an index build.
///
/// Not thread-safe across callers: one engine belongs to one thread (its
/// internal pool fan is the only concurrency). Callers running *inside*
/// TaskPool tasks must use an engine without a pool (run() is not
/// reentrant) — e.g. one engine per worker slot.
class QueryEngine {
 public:
  QueryEngine() = default;
  explicit QueryEngine(const FlatLabeling& labels,
                       exec::TaskPool* pool = nullptr)
      : labels_(&labels), pool_(pool) {}

  /// Re-targets the engine at another (or a re-frozen) store. Cheap: the
  /// index is only rebuilt if an index-backed query follows.
  void bind(const FlatLabeling& labels) {
    labels_ = &labels;
    external_index_ = nullptr;
    filter_ = nullptr;  // a filter belongs to one store; re-attach after bind
  }

  /// Binds a store together with a prebuilt postings index (the serving
  /// snapshot shape: both frozen elsewhere, the engine only reads). In this
  /// mode the engine never rebuilds the index; index-backed try_* calls
  /// return kStaleGeneration when `index` was not built from `labels` at its
  /// current generation, so a mid-swap mismatch degrades instead of
  /// decoding stale weights.
  void bind(const FlatLabeling& labels, const InvertedHubIndex& index) {
    labels_ = &labels;
    external_index_ = &index;
    filter_ = nullptr;  // a filter belongs to one store; re-attach after bind
  }
  void set_pool(exec::TaskPool* pool) { pool_ = pool; }

  /// Attaches a pruning filter (not owned; must outlive the binding). Every
  /// query shape consults it: filtered kernels are bit-identical to the
  /// unfiltered ones, just cheaper. A filter whose generation no longer
  /// matches the bound store is silently ignored (unfiltered decode), so a
  /// mid-swap serving batch degrades to correct-but-unpruned instead of
  /// pruning with stale flags. nullptr detaches.
  void set_filter(const LabelFilter* filter) { filter_ = filter; }
  const LabelFilter* filter() const { return filter_; }

  /// Pinned source-row cache: each fan worker retains up to `slots`
  /// recently pinned source rows (generation-stamped DecodeScratch slabs)
  /// and reuses one when a batch repeats a source — the dense pin scatter
  /// is skipped entirely, counted in QueryEngineStats::row_cache_hits.
  /// Bit-exact: a retained pin holds exactly the scattered bytes a fresh
  /// pin of the same (store, generation, source, side) would produce, and
  /// a re-frozen or swapped store invalidates every slot by generation
  /// mismatch alone. 0 (the default) disables reuse: one slot per worker,
  /// re-pinned every source — the pre-cache behavior.
  void set_row_cache(std::size_t slots) { row_cache_slots_ = slots; }
  std::size_t row_cache_slots() const { return row_cache_slots_; }

  /// Monotonic counters since construction / the last reset_stats(). Safe
  /// to read while the engine's pool fan is running (individually atomic).
  QueryEngineStats stats() const;
  void reset_stats();
  const FlatLabeling& labels() const {
    LOWTW_CHECK_MSG(labels_ != nullptr, "QueryEngine used before bind()");
    return *labels_;
  }

  /// The postings index over the bound store: the external one when bound
  /// with one (checked fresh by the try_* paths), else the internal index
  /// built on first use and refreshed whenever the store's generation moved.
  const InvertedHubIndex& index();

  // --- typed (non-throwing) entry points ------------------------------------
  // Identical decode semantics to the throwing methods below; on any status
  // other than kOk the outputs are untouched. kStaleGeneration can only
  // arise in external-index mode (the internal index rebuilds itself):
  // there, *every* try_* call — including the pin/merge paths that never
  // touch postings — verifies the (store, index) pair is coherent, so a
  // torn snapshot surfaces as one retryable verdict instead of a mix of
  // fresh and stale answers.

  QueryStatus try_one_vs_all(graph::VertexId source,
                             std::span<graph::Weight> out_dist,
                             std::span<graph::Weight> out_dist_to);
  QueryStatus try_one_vs_all_batch(std::span<const graph::VertexId> sources,
                                   std::span<graph::Weight> out_dist,
                                   std::span<graph::Weight> out_dist_to);
  QueryStatus try_run(QueryBatch& batch);
  QueryStatus try_pairwise(std::span<const QueryPair> pairs,
                           std::span<graph::Weight> out);

  /// dec(source, v) and dec(v, source) for every v, via postings merges.
  /// Spans must be sized num_vertices().
  void one_vs_all(graph::VertexId source, std::span<graph::Weight> out_dist,
                  std::span<graph::Weight> out_dist_to);

  /// Row-major batch: row i of out_dist / out_dist_to (stride n) answers
  /// sources[i]. One index freeze, then independent sources fan across the
  /// pool; bit-identical to serial for every worker count.
  void one_vs_all_batch(std::span<const graph::VertexId> sources,
                        std::span<graph::Weight> out_dist,
                        std::span<graph::Weight> out_dist_to);

  /// Grouped many-to-many: fills batch.results with dec(source, target) per
  /// target run. Each source pins once and gathers its run; sources fan
  /// across the pool.
  void run(QueryBatch& batch);

  /// Rectangular convenience: out[i * targets.size() + j] =
  /// dec(sources[i], targets[j]).
  void many_to_many(std::span<const graph::VertexId> sources,
                    std::span<const graph::VertexId> targets,
                    std::span<graph::Weight> out);

  /// Independent pairs: out[i] = dec(pairs[i].u, pairs[i].v), merge/gallop
  /// decodes with lookahead prefetch; chunks fan across the pool.
  void pairwise(std::span<const QueryPair> pairs,
                std::span<graph::Weight> out);

 private:
  int fan_workers() const;
  /// Shared stale/unbound gate of the index-backed try_* paths: returns the
  /// index to decode through, or nullptr with `status` set.
  const InvertedHubIndex* checked_index(QueryStatus& status);
  /// The attached filter iff it matches the bound store's current
  /// generation; nullptr (→ unfiltered decode) otherwise.
  const LabelFilter* active_filter() const {
    return filter_ != nullptr && labels_ != nullptr &&
                   filter_->matches(*labels_)
               ? filter_
               : nullptr;
  }
  void note_query(bool filtered, const PruneCounters& counters) {
    stat_queries_.fetch_add(1, std::memory_order_relaxed);
    if (filtered) stat_filtered_.fetch_add(1, std::memory_order_relaxed);
    add_touches(counters);
  }
  /// Tasks of one fan accumulate locally and flush once; the totals are
  /// order-invariant sums, so stats stay deterministic at any worker count.
  void add_touches(const PruneCounters& counters) {
    stat_entries_.fetch_add(counters.entries_touched,
                            std::memory_order_relaxed);
    stat_runs_skipped_.fetch_add(counters.postings_runs_skipped,
                                 std::memory_order_relaxed);
  }

  /// Returns a scratch pinned to `source` on `side` for `worker`: a slab
  /// slot already holding that pin (row-cache hit, generation-checked), or
  /// the worker's LRU slot freshly pinned. Touches only worker's own slab.
  FlatLabeling::DecodeScratch& pinned_scratch(int worker,
                                              graph::VertexId source,
                                              FlatLabeling::PinSide side);

  const FlatLabeling* labels_ = nullptr;
  /// Prebuilt snapshot index when bound with one; never rebuilt here.
  const InvertedHubIndex* external_index_ = nullptr;
  const LabelFilter* filter_ = nullptr;  ///< not owned; see set_filter
  exec::TaskPool* pool_ = nullptr;
  InvertedHubIndex index_;
  /// Per-worker pin slabs (exec::WorkerLocal contract: slab contents never
  /// leak into results — a reused pin holds exactly the bytes a fresh pin
  /// would). One slot per worker with the row cache off; up to
  /// row_cache_slots_ retained pins per worker with it on, evicted by the
  /// slab's LRU clock.
  struct PinSlab {
    struct Slot {
      FlatLabeling::DecodeScratch scratch;
      std::uint64_t tick = 0;
    };
    std::vector<Slot> slots;
    std::uint64_t clock = 0;  ///< touched only by the owning worker
  };
  std::vector<PinSlab> slabs_;
  std::size_t row_cache_slots_ = 0;
  // Stats counters (QueryEngineStats). Atomic because pool tasks bump them;
  // relaxed order is enough for monotonic monitoring counters.
  std::atomic<std::uint64_t> stat_queries_{0};
  std::atomic<std::uint64_t> stat_filtered_{0};
  std::atomic<std::uint64_t> stat_entries_{0};
  std::atomic<std::uint64_t> stat_runs_skipped_{0};
  std::atomic<std::uint64_t> stat_row_hits_{0};
};

}  // namespace lowtw::labeling
