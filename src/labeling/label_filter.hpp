// Goal-directed pruning filters over the frozen hub-label store.
//
// Hub label size drives every hot query path — pairwise merge decodes,
// inverted-postings scans, and the batch flood charge (3·Σ|label|). Most of
// that work is provably wasted: a given (u, hub) entry only ever *wins* the
// decoder's min-fold for targets in a small region of the graph (the side of
// the separator the hub guards). `LabelFilter` is the arc-flag/bounding idea
// of warthog's bbaf_labelling / down_distance_filter transplanted onto hub
// labels: partition the vertices into parts (the TD hierarchy gives one for
// free — td/partition.hpp; a deterministic multi-source BFS is the fallback),
// then record per entry which target parts it can begin a shortest path
// toward, plus a bound on the winning closing leg.
//
// Sidecar layout (SoA, aligned with the frozen store's packed entry arrays;
// entry i of vertex v lives at global slot labels.offset(v) + i):
//
//   fwd_flags  — bitset over parts per entry: bit p of entry (u, h) is set
//                iff some v with part(v) == p has dec(u, v) == to_u[h] +
//                from_v[h] < inf (h closes a shortest u → v path). Ties
//                included, so at least one winning entry stays flagged.
//   bwd_flags  — the mirror for dec(v, u) through from_u[h] + to_v[h].
//   fwd_bound  — max from_v[h] over winning targets v of the entry (-1 when
//                it never wins): at decode time a match whose closing leg
//                exceeds the bound cannot be a winner and is skipped.
//   bwd_bound  — the mirror bound on to_v[h].
//
// Part-major postings: the filter also re-cuts the inverted index's postings
// into (hub, part) segments (vertex-ascending within each), so the filtered
// one-vs-all relaxes only the flagged segments of each run and skips whole
// parts per hub — that is where the ≥2× entries-touched win on banded /
// road-like families comes from.
//
// Exactness: every skip rule only discards candidates that are strictly
// worse than dec(u, v) or duplicates of a kept winner, so filtered decode is
// bit-identical to unfiltered decode — property-tested across every graph
// family, part counts, engine modes, and the serving fault drills. Pruning
// charges no CONGEST rounds (decode is free in the ledger model).
//
// Construction cost is n unfiltered one-vs-all rows (the exact winner sets),
// fanned TaskPool-parallel over sources; each source writes only its own
// entry slots, so the build is bit-identical at any worker count.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "exec/task_pool.hpp"
#include "graph/digraph.hpp"
#include "labeling/flat_labeling.hpp"
#include "labeling/inverted_index.hpp"
#include "util/array_ref.hpp"

namespace lowtw::labeling {

/// Pruning effectiveness counters, accumulated by the filtered kernels and
/// surfaced through QueryEngine stats / the daemon STATS verb.
struct PruneCounters {
  /// Weight candidates actually folded into the min (postings relaxed /
  /// surviving merge matches) — comparable against the unfiltered kernels'
  /// fold counts (see QueryEngineStats).
  std::uint64_t entries_touched = 0;
  /// (hub, part) postings segments skipped because their flag was clear.
  std::uint64_t postings_runs_skipped = 0;
};

/// SolverOptions / OracleOptions knob for building a filter.
struct FilterParams {
  bool enabled = false;
  /// Parts in the vertex partition; more parts prune harder but cost
  /// num_parts bits per entry per direction. 0 = default (16).
  int num_parts = 16;
};

/// The raw persisted form (LTWB kind 4 sidecar, label_io): partition +
/// flags + bounds. The part-major postings are not persisted — they are
/// re-derived deterministically from the rebuilt inverted index on load.
struct FilterSidecar {
  std::int32_t num_parts = 0;
  std::vector<std::int32_t> part_of;        ///< size n
  std::vector<std::uint64_t> fwd_flags;     ///< size total * words_per_entry
  std::vector<std::uint64_t> bwd_flags;     ///< size total * words_per_entry
  std::vector<graph::Weight> fwd_bound;     ///< size total
  std::vector<graph::Weight> bwd_bound;     ///< size total
};

class LabelFilter {
 public:
  LabelFilter() = default;

  /// Builds the filter for `labels` through its postings `index` (must match
  /// the store's current generation). `part_of` maps every vertex to a part
  /// in [0, num_parts). O(n one-vs-all rows); fans over `pool` when given,
  /// bit-identical at any worker count.
  static LabelFilter build(const FlatLabeling& labels,
                           const InvertedHubIndex& index,
                           std::vector<std::int32_t> part_of, int num_parts,
                           exec::TaskPool* pool = nullptr);

  /// Reassembles a filter from a persisted sidecar (validated against the
  /// store's shape; throws CheckFailure on any inconsistency). The
  /// part-major postings are re-derived from `index`.
  static LabelFilter from_sidecar(const FlatLabeling& labels,
                                  const InvertedHubIndex& index,
                                  FilterSidecar sidecar);
  FilterSidecar to_sidecar() const;

  /// Assembles a filter from a frozen image's sections — unlike the kind-4
  /// sidecar path, the part-major postings segments are persisted too, so
  /// the load does zero derive work (the arrays are typically
  /// ArrayRef::borrowed views into the mapping). Validates partition range,
  /// section shapes against the store, and the segment table's structure
  /// (monotone offsets spanning hub_bound × num_parts, vertex-ascending
  /// in-range segments); throws CheckFailure on any inconsistency. Binds to
  /// `labels` at its current generation — pass the store at its final
  /// address, as with InvertedHubIndex::from_parts.
  static LabelFilter from_image_parts(
      const FlatLabeling& labels, std::int32_t num_parts,
      util::ArrayRef<std::int32_t> part_of,
      util::ArrayRef<std::uint64_t> fwd_flags,
      util::ArrayRef<std::uint64_t> bwd_flags,
      util::ArrayRef<graph::Weight> fwd_bound,
      util::ArrayRef<graph::Weight> bwd_bound,
      util::ArrayRef<std::size_t> seg_offsets,
      util::ArrayRef<graph::VertexId> seg_vertices,
      util::ArrayRef<graph::Weight> seg_to_hub,
      util::ArrayRef<graph::Weight> seg_from_hub);

  bool empty() const { return source_ == nullptr; }
  /// True iff built from `labels` at its current generation — same freshness
  /// contract as InvertedHubIndex::matches; filtered query paths fall back
  /// to unfiltered decode when stale instead of pruning with wrong flags.
  bool matches(const FlatLabeling& labels) const {
    return source_ == &labels && source_generation_ == labels.generation();
  }

  int num_parts() const { return num_parts_; }
  std::size_t words_per_entry() const { return words_per_entry_; }
  std::int32_t part_of(graph::VertexId v) const { return part_of_[v]; }

  /// Flag probes (tests / introspection); `entry` is a global slot index.
  bool fwd_flag(std::size_t entry, std::int32_t part) const {
    return (fwd_flags_[entry * words_per_entry_ +
                       static_cast<std::size_t>(part >> 6)] >>
            (part & 63)) &
           1;
  }
  bool bwd_flag(std::size_t entry, std::int32_t part) const {
    return (bwd_flags_[entry * words_per_entry_ +
                       static_cast<std::size_t>(part >> 6)] >>
            (part & 63)) &
           1;
  }

  /// Whole packed arrays (persistence writers). The seg_* arrays are the
  /// part-major postings recut; persisting them lets an image load skip the
  /// derive pass entirely.
  std::span<const std::int32_t> raw_part_of() const {
    return {part_of_.data(), part_of_.size()};
  }
  std::span<const std::uint64_t> raw_fwd_flags() const {
    return {fwd_flags_.data(), fwd_flags_.size()};
  }
  std::span<const std::uint64_t> raw_bwd_flags() const {
    return {bwd_flags_.data(), bwd_flags_.size()};
  }
  std::span<const graph::Weight> raw_fwd_bound() const {
    return {fwd_bound_.data(), fwd_bound_.size()};
  }
  std::span<const graph::Weight> raw_bwd_bound() const {
    return {bwd_bound_.data(), bwd_bound_.size()};
  }
  std::span<const std::size_t> raw_seg_offsets() const {
    return {seg_offsets_.data(), seg_offsets_.size()};
  }
  std::span<const graph::VertexId> raw_seg_vertices() const {
    return {seg_vertices_.data(), seg_vertices_.size()};
  }
  std::span<const graph::Weight> raw_seg_to_hub() const {
    return {seg_to_hub_.data(), seg_to_hub_.size()};
  }
  std::span<const graph::Weight> raw_seg_from_hub() const {
    return {seg_from_hub_.data(), seg_from_hub_.size()};
  }

  /// dec(u, v) with flag + bound pruning; bit-identical to
  /// FlatLabeling::decode(u, v).
  graph::Weight decode(graph::VertexId u, graph::VertexId v,
                       PruneCounters* counters = nullptr) const;

  /// Filtered one-vs-all: relaxes only the flagged (hub, part) segments of
  /// the source's postings runs. Bit-identical to
  /// InvertedHubIndex::one_vs_all; spans must be sized num_vertices().
  void one_vs_all(graph::VertexId source, std::span<graph::Weight> out_dist,
                  std::span<graph::Weight> out_dist_to,
                  PruneCounters* counters = nullptr) const;

 private:
  void derive_part_major(const InvertedHubIndex& index);

  std::int32_t num_parts_ = 0;
  std::size_t words_per_entry_ = 0;
  /// Borrowed-or-owned storage (see FlatLabeling's storage note): built
  /// filters own their arrays; image-loaded filters borrow the mapping.
  util::ArrayRef<std::int32_t> part_of_;
  util::ArrayRef<std::uint64_t> fwd_flags_;
  util::ArrayRef<std::uint64_t> bwd_flags_;
  util::ArrayRef<graph::Weight> fwd_bound_;
  util::ArrayRef<graph::Weight> bwd_bound_;

  /// Part-major postings: segment (h, p) holds the postings of hub h whose
  /// vertex lies in part p, vertex-ascending; seg_offsets_ has
  /// hub_bound * num_parts + 1 entries. The min-fold is order-invariant, so
  /// relaxing segments instead of whole runs preserves bit-exactness.
  util::ArrayRef<std::size_t> seg_offsets_;
  util::ArrayRef<graph::VertexId> seg_vertices_;
  util::ArrayRef<graph::Weight> seg_to_hub_;
  util::ArrayRef<graph::Weight> seg_from_hub_;

  const FlatLabeling* source_ = nullptr;
  std::uint64_t source_generation_ = 0;
};

/// Fallback partition when no TD hierarchy is attached (serving installs of
/// pre-frozen artifacts): round-robin multi-source BFS over the undirected
/// skeleton from num_parts roots, each root drawn from its own
/// Rng::fork(part) stream of `seed` — deterministic in (graph, num_parts,
/// seed), independent of thread count.
std::vector<std::int32_t> partition_bfs(const graph::WeightedDigraph& g,
                                        int num_parts, std::uint64_t seed);

}  // namespace lowtw::labeling
