// Frozen SoA distance-label store + batch decode kernels.
//
// `Label` / `DistanceLabeling` stay the mutable builders (per-vertex sorted
// AoS entry vectors, incremental upserts during the bottom-up construction);
// `FlatLabeling` is the immutable query layout: all labels packed into three
// contiguous arrays (`hub_ids`, `to_hub`, `from_hub`) plus an n+1 offset
// table — the Label → FlatLabeling freeze mirrors the Graph → CsrGraph
// layering of the graph core.
//
// Why it is fast: the decoder of Section 4.1 merge-intersects two sorted hub
// sets and only touches the weights on a hub match. In the AoS layout every
// comparison drags a 24-byte LabelEntry through the cache; here the merge
// scans the 4-byte `hub_ids` stream and gathers from `to_hub` / `from_hub`
// only on matches, galloping (exponential search) over the longer span when
// sizes are skewed. Batch consumers go further: `pin` scatters one label
// into a dense hub-indexed array, after which every decode against it is a
// branchless SIMD gather-min over the other span (see DecodeScratch below
// and the dispatch in flat_labeling.cpp).
//
// Decode results are bit-identical to `decode_distance` on the source
// labeling: the min-fold over common hubs is order-invariant and the
// unguarded `to + from` sum saturates past kInfinity without overflow
// (kInfinity = max/4), so infinite legs can never win the min.
#pragma once

#include <span>
#include <vector>

#include "labeling/label.hpp"
#include "util/array_ref.hpp"

namespace lowtw::labeling {

class FlatLabeling {
 public:
  FlatLabeling() = default;

  /// Freezes a builder labeling into SoA form. O(total entries).
  explicit FlatLabeling(const DistanceLabeling& labeling) {
    assign(labeling);
  }

  /// Re-freeze into the same storage (buffers are reused once grown).
  void assign(const DistanceLabeling& labeling);

  int num_vertices() const { return static_cast<int>(offsets_.size()) - 1; }
  std::size_t num_entries() const { return hub_ids_.size(); }

  /// Exclusive upper bound on hub ids (≥ num_vertices(); larger only for
  /// hand-built labelings with out-of-range hubs). Sizes the dense pin
  /// arrays and the inverted index's per-hub offset table.
  graph::VertexId hub_bound() const { return hub_bound_; }

  /// Content stamp, bumped on every assign()/from_parts(). Companion
  /// structures built from this store (DecodeScratch pins, the inverted hub
  /// index) record it and compare on use to detect a re-frozen store.
  std::uint64_t generation() const { return generation_; }

  /// Number of hubs of v.
  std::size_t entries(graph::VertexId v) const {
    return offsets_[v + 1] - offsets_[v];
  }
  /// Global position of v's span in the packed entry arrays: sidecars
  /// aligned with them (the label filter's per-entry flags and bounds)
  /// address entry i of v as offset(v) + i.
  std::size_t offset(graph::VertexId v) const { return offsets_[v]; }
  std::size_t max_entries() const;

  /// Sorted hub ids of v (paired index-wise with to_hub(v) / from_hub(v)).
  std::span<const graph::VertexId> hubs(graph::VertexId v) const {
    return {hub_ids_.data() + offsets_[v], entries(v)};
  }
  std::span<const graph::Weight> to_hub(graph::VertexId v) const {
    return {to_hub_.data() + offsets_[v], entries(v)};
  }
  std::span<const graph::Weight> from_hub(graph::VertexId v) const {
    return {from_hub_.data() + offsets_[v], entries(v)};
  }

  /// Whole packed arrays (persistence writers).
  std::span<const std::size_t> raw_offsets() const {
    return {offsets_.data(), offsets_.size()};
  }
  std::span<const graph::VertexId> raw_hub_ids() const {
    return {hub_ids_.data(), hub_ids_.size()};
  }
  std::span<const graph::Weight> raw_to_hub() const {
    return {to_hub_.data(), to_hub_.size()};
  }
  std::span<const graph::Weight> raw_from_hub() const {
    return {from_hub_.data(), from_hub_.size()};
  }

  /// dec(la(u), la(v)): min over common hubs s of d(u→s) + d(s→v).
  /// Bit-identical to decode_distance on the source labeling.
  graph::Weight decode(graph::VertexId u, graph::VertexId v) const;

  /// Scratch for source-pinned batch decoding: u's label scattered into two
  /// dense hub-indexed arrays (kInfinity off-label), so each subsequent
  /// decode against u is a branchless gather over the other span instead of
  /// a merge. Reusable across pins; allocates only on growth.
  struct DecodeScratch {
    std::vector<graph::Weight> dense_to;    ///< d(pinned → hub), by hub id
    std::vector<graph::Weight> dense_from;  ///< d(hub → pinned), by hub id
    const FlatLabeling* owner = nullptr;     ///< store the pin came from
    std::uint64_t owner_generation = 0;      ///< its content stamp at pin time
    graph::VertexId pinned = graph::kNoVertex;
    bool to_valid = false;
    bool from_valid = false;
  };

  /// Which directions a pin scatters; pinning only the needed side halves
  /// the per-source setup (girth only ever decodes *from* the pinned head).
  enum class PinSide { kFrom, kTo, kBoth };

  /// Pins u as the shared side of a decode batch. O(n) on first use of the
  /// scratch, O(|label(u)| + |label(prev)|) after.
  void pin(graph::VertexId u, DecodeScratch& scratch,
           PinSide side = PinSide::kBoth) const;
  /// dec(pinned, v): gather kernel, identical result to decode(pinned, v).
  /// Runtime-dispatched to AVX-512 / AVX2 gathers where the CPU has them.
  graph::Weight decode_from_pinned(const DecodeScratch& scratch,
                                   graph::VertexId v) const;
  /// dec(v, pinned).
  graph::Weight decode_to_pinned(const DecodeScratch& scratch,
                                 graph::VertexId v) const;

  /// Prefetch hints for upcoming pinned decodes: the spans live at random
  /// offsets of the packed arrays, so issuing the first lines one or two
  /// decodes ahead hides the span-start miss latency. `prefetch_target(v)`
  /// primes v for decode_from_pinned (hubs + from_hub), `prefetch_source(v)`
  /// for decode_to_pinned (hubs + to_hub).
  void prefetch_target(graph::VertexId v) const;
  void prefetch_source(graph::VertexId v) const;

  /// Batch kernel: decodes u against every vertex in one pass, writing
  /// out_dist[v] = dec(u, v) and out_dist_to[v] = dec(v, u). One pin of u,
  /// then a single gather sweep over every span serves both directions.
  /// Spans must be sized num_vertices().
  void decode_one_vs_all(graph::VertexId u, std::span<graph::Weight> out_dist,
                         std::span<graph::Weight> out_dist_to) const;

  /// Thaws back to the builder AoS form (tests / persistence convenience).
  DistanceLabeling thaw() const;

  /// Assembles a store from pre-packed arrays — owned vectors (the label_io
  /// reader builds these directly from the stream) or read-only borrows into
  /// an mmapped frozen image (util::ArrayRef::borrowed; the decode kernels
  /// then run directly on the mapping). `offsets` must be a valid n+1
  /// prefix-sum table and hubs must be sorted within each span; checked.
  static FlatLabeling from_parts(util::ArrayRef<std::size_t> offsets,
                                 util::ArrayRef<graph::VertexId> hub_ids,
                                 util::ArrayRef<graph::Weight> to_hub,
                                 util::ArrayRef<graph::Weight> from_hub);

 private:
  /// Borrowed-or-owned SoA storage; the query kernels are agnostic (they
  /// only ever touch data()/size(), branch-free in both modes).
  util::ArrayRef<std::size_t> offsets_{0};  ///< size n+1
  util::ArrayRef<graph::VertexId> hub_ids_;
  util::ArrayRef<graph::Weight> to_hub_;
  util::ArrayRef<graph::Weight> from_hub_;
  /// Exclusive upper bound on hub ids (= n for construction-built labelings;
  /// sizes the dense pin arrays for hand-built ones with out-of-range hubs).
  graph::VertexId hub_bound_ = 0;
  /// Content stamp, bumped by assign()/from_parts: lets pin() detect a
  /// scratch whose incremental bookkeeping belongs to another store — or to
  /// this store before a re-freeze — and refill it wholesale.
  std::uint64_t generation_ = 0;
};

}  // namespace lowtw::labeling
