// Routing oracle: an ISP-style backbone answers latency queries from
// compact per-router labels, without any further communication.
//
//   ./routing_oracle [--n 400] [--k 3] [--queries 2000] [--seed 7]
//
// Scenario: a backbone network grown hierarchically (partial k-tree —
// MSJ19 report real router-level topologies have low treewidth), with
// asymmetric link latencies (directed arcs). After the one-time
// CONGEST-phase construction of the distance labeling (Theorem 2), the
// query mix is served through Solver::sssp_batch — the batched query
// plane: the distinct sources flood once (pipelined, one diameter term for
// the whole batch), the inverted hub index is frozen once, and every
// source's full distance row comes out of sequential postings merges. Any
// (source, target) latency is then a row lookup. A scalar per-query label
// decode is timed alongside for comparison, and a sample is verified
// against Dijkstra.
#include <algorithm>
#include <chrono>
#include <cstdio>

#include "core/solver.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace lowtw;
  util::Flags flags(argc, argv);
  const int n = static_cast<int>(flags.get_int("n", 400));
  const int k = static_cast<int>(flags.get_int("k", 3));
  const int queries = static_cast<int>(flags.get_int("queries", 2000));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));

  util::Rng rng(seed);
  graph::Graph topo = graph::gen::partial_ktree(n, k, 0.7, rng);
  // Asymmetric latencies: 1..100 per direction (directed instance).
  graph::WeightedDigraph net = graph::gen::random_orientation(
      topo, /*both_prob=*/0.9, /*lo=*/1, /*hi=*/100, rng);
  std::printf("backbone: %d routers, %d directed links\n",
              net.num_vertices(), net.num_arcs());

  SolverOptions options;
  options.seed = seed;
  Solver solver(net, options);
  const auto& dl = solver.distance_labeling();
  std::printf("oracle construction: %.0f CONGEST rounds; label size max %zu "
              "entries (%zu bits) vs full table %d entries\n",
              dl.rounds, dl.max_label_entries, dl.max_label_bits,
              net.num_vertices());

  // The query mix: random (source, target) pairs, as a monitoring plane
  // would issue them.
  std::vector<std::pair<graph::VertexId, graph::VertexId>> qs;
  for (int i = 0; i < queries; ++i) {
    qs.emplace_back(static_cast<graph::VertexId>(rng.next_below(n)),
                    static_cast<graph::VertexId>(rng.next_below(n)));
  }

  // Batched serving: answer the distinct sources in one sssp_batch — one
  // pipelined flood charge, one inverted-index freeze, a postings-merge row
  // per source — then every query is a lookup into its source's row.
  auto t0 = std::chrono::steady_clock::now();
  std::vector<graph::VertexId> sources;
  sources.reserve(qs.size());
  for (auto [s, t] : qs) sources.push_back(s);
  std::sort(sources.begin(), sources.end());
  sources.erase(std::unique(sources.begin(), sources.end()), sources.end());
  labeling::SsspBatchResult batch = solver.sssp_batch(sources);
  std::vector<std::size_t> row_of(static_cast<std::size_t>(n), 0);
  for (std::size_t i = 0; i < sources.size(); ++i) {
    row_of[sources[i]] = i;
  }
  std::uint64_t checksum = 0;
  for (auto [s, t] : qs) {
    graph::Weight d = batch.dist_row(row_of[s])[t];
    checksum += static_cast<std::uint64_t>(d & 0xffff);
  }
  auto t1 = std::chrono::steady_clock::now();
  double batch_us = std::chrono::duration<double, std::micro>(t1 - t0).count();
  std::printf(
      "%d queries over %zu distinct sources in %.1f us (%.2f us/query, "
      "%.0f extra CONGEST rounds for the batch flood), checksum %llu\n",
      queries, sources.size(), batch_us, batch_us / queries, batch.rounds,
      static_cast<unsigned long long>(checksum));
  // Each batch row is a full n-entry distance vector, so the oracle has in
  // fact answered sources × n pairs — the per-distance cost is what scales
  // to heavy query mixes (any further query on these sources is a lookup).
  std::printf("  (batch computed %zu full rows = %zu distances, %.3f us "
              "per distance)\n",
              sources.size(), sources.size() * static_cast<std::size_t>(n),
              batch_us / static_cast<double>(sources.size() *
                                             static_cast<std::size_t>(n)));

  // Scalar reference: one label decode per query (the pre-batch serving
  // path); both paths must agree query by query.
  auto t2 = std::chrono::steady_clock::now();
  std::uint64_t scalar_checksum = 0;
  for (auto [s, t] : qs) {
    graph::Weight d = dl.flat.decode(s, t);
    scalar_checksum += static_cast<std::uint64_t>(d & 0xffff);
  }
  auto t3 = std::chrono::steady_clock::now();
  double scalar_us =
      std::chrono::duration<double, std::micro>(t3 - t2).count();
  std::printf("scalar decode reference: %.1f us (%.2f us/query), %s\n",
              scalar_us, scalar_us / queries,
              scalar_checksum == checksum ? "checksums agree"
                                          : "CHECKSUM MISMATCH");

  int verified = 0;
  int bad = 0;
  for (int i = 0; i < 5; ++i) {
    auto [s, t] = qs[static_cast<std::size_t>(i) * qs.size() / 5];
    auto truth = graph::dijkstra(net, s);
    graph::Weight d = batch.dist_row(row_of[s])[t];
    bool ok = d == truth.dist[t];
    std::printf("  verify dist(%d -> %d) = %lld  [%s]\n", s, t,
                static_cast<long long>(d), ok ? "exact" : "MISMATCH");
    ++verified;
    if (!ok) ++bad;
  }
  std::printf("%d/%d verified queries exact\n", verified - bad, verified);
  return (bad == 0 && scalar_checksum == checksum) ? 0 : 1;
}
