// Routing oracle: an ISP-style backbone answers latency queries from
// compact per-router labels — served by the hardened long-lived runtime.
//
//   ./routing_oracle [--n 400] [--k 3] [--queries 2000] [--clients 4]
//                    [--seed 7]
//
// Scenario: a backbone network grown hierarchically (partial k-tree —
// MSJ19 report real router-level topologies have low treewidth), with
// asymmetric link latencies (directed arcs). After the one-time
// CONGEST-phase construction of the distance labeling (Theorem 2), the
// label artifact is written crash-safely (temp + atomic rename, per-section
// checksums) and a serving::Oracle is cold-started from it: concurrent
// client threads submit point queries, the admission front coalesces them
// into QueryBatch shapes, and every response carries the degradation rung
// it was served from. A fault drill then corrupts a reload (rejected — the
// old snapshot keeps serving), drops the postings index (flat-decode rung),
// and stalls the worker against a tight deadline (timeout verdict). A
// sample of served distances is verified against Dijkstra.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "core/solver.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "labeling/label_io.hpp"
#include "serving/oracle.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace lowtw;
  using namespace std::chrono_literals;
  util::Flags flags(argc, argv);
  const int n = static_cast<int>(flags.get_int("n", 400));
  const int k = static_cast<int>(flags.get_int("k", 3));
  const int queries = static_cast<int>(flags.get_int("queries", 2000));
  const int clients = static_cast<int>(flags.get_int("clients", 4));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));

  util::Rng rng(seed);
  graph::Graph topo = graph::gen::partial_ktree(n, k, 0.7, rng);
  // Asymmetric latencies: 1..100 per direction (directed instance).
  graph::WeightedDigraph net = graph::gen::random_orientation(
      topo, /*both_prob=*/0.9, /*lo=*/1, /*hi=*/100, rng);
  std::printf("backbone: %d routers, %d directed links\n",
              net.num_vertices(), net.num_arcs());

  // One-time construction, then the artifact round-trip a real deployment
  // would do: write crash-safely, reload through the checksummed reader.
  SolverOptions options;
  options.seed = seed;
  Solver solver(net, options);
  const auto& dl = solver.distance_labeling();
  std::printf("oracle construction: %.0f CONGEST rounds; label size max %zu "
              "entries (%zu bits) vs full table %d entries\n",
              dl.rounds, dl.max_label_entries, dl.max_label_bits,
              net.num_vertices());
  std::stringstream artifact;
  labeling::io::write_labeling_binary(artifact, dl.flat);
  std::printf("label artifact: %zu bytes (LTWB kind 3, per-section FNV-1a)\n",
              artifact.str().size());

  serving::FaultInjector faults(seed);
  serving::OracleOptions sopts;
  sopts.seed = seed;
  sopts.faults = &faults;
  sopts.admission.batch_window = 200us;
  sopts.admission.default_deadline = 500ms;
  serving::Oracle oracle(net, sopts);
  if (!oracle.load_snapshot(artifact)) {
    std::printf("FATAL: clean artifact rejected\n");
    return 1;
  }
  oracle.start();

  // The query mix, spread over concurrent clients as a monitoring plane
  // would issue it.
  std::atomic<std::uint64_t> checksum{0};
  std::atomic<int> not_ok{0};
  auto t0 = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> pool;
    const int per_client = queries / std::max(1, clients);
    for (int c = 0; c < clients; ++c) {
      pool.emplace_back([&, c] {
        util::Rng qrng(seed + 100 + static_cast<std::uint64_t>(c));
        for (int i = 0; i < per_client; ++i) {
          const auto s = static_cast<graph::VertexId>(qrng.next_below(n));
          const auto t = static_cast<graph::VertexId>(qrng.next_below(n));
          serving::QueryResponse r = oracle.query(s, t);
          if (r.status == serving::ServeStatus::kOk) {
            checksum.fetch_add(
                static_cast<std::uint64_t>(r.distance & 0xffff));
          } else {
            not_ok.fetch_add(1);
          }
        }
      });
    }
    for (auto& t : pool) t.join();
  }
  auto t1 = std::chrono::steady_clock::now();
  const double served_us =
      std::chrono::duration<double, std::micro>(t1 - t0).count();
  serving::OracleStats s = oracle.stats();
  std::printf(
      "%llu queries over %d clients in %.1f us (%.2f us/query) — "
      "%llu batches (%.1f req/batch), levels: %llu batched-index / %llu "
      "flat / %llu dijkstra, %llu timeouts, %d non-ok\n",
      static_cast<unsigned long long>(s.admitted), clients, served_us,
      served_us / std::max<double>(1.0, static_cast<double>(s.admitted)),
      static_cast<unsigned long long>(s.batches),
      static_cast<double>(s.admitted) /
          std::max<double>(1.0, static_cast<double>(s.batches)),
      static_cast<unsigned long long>(s.served_batched_index),
      static_cast<unsigned long long>(s.served_flat),
      static_cast<unsigned long long>(s.served_dijkstra),
      static_cast<unsigned long long>(s.timeouts), not_ok.load());

  // Scalar one-at-a-time reference on the same mix: what the batching and
  // the admission front buy.
  auto t2 = std::chrono::steady_clock::now();
  std::uint64_t scalar_checksum = 0;
  {
    util::Rng qrng(seed + 999);
    for (int i = 0; i < queries; ++i) {
      const auto u = static_cast<graph::VertexId>(qrng.next_below(n));
      const auto v = static_cast<graph::VertexId>(qrng.next_below(n));
      scalar_checksum += static_cast<std::uint64_t>(
          oracle.serve_now(u, v).distance & 0xffff);
    }
  }
  auto t3 = std::chrono::steady_clock::now();
  std::printf("scalar serve_now reference: %.2f us/query (checksum %llu)\n",
              std::chrono::duration<double, std::micro>(t3 - t2).count() /
                  std::max(1, queries),
              static_cast<unsigned long long>(scalar_checksum));

  // --- fault drill: every failure mode degrades, none lies -----------------
  int bad = 0;

  // 1. A corrupted artifact reload is rejected; the live snapshot serves on.
  faults.arm_nth(serving::FaultSite::kSnapshotLoadCorruption,
                 faults.probes(serving::FaultSite::kSnapshotLoadCorruption),
                 1);
  std::stringstream corrupt_reload;
  labeling::io::write_labeling_binary(corrupt_reload, dl.flat);
  const bool rejected = !oracle.load_snapshot(corrupt_reload);
  std::printf("fault drill: corrupted reload %s (generation stays %llu)\n",
              rejected ? "rejected" : "ACCEPTED (BUG)",
              static_cast<unsigned long long>(oracle.generation()));
  if (!rejected) ++bad;

  // 2. Index build failure: the next snapshot serves at the flat rung.
  faults.arm_nth(serving::FaultSite::kEngineAllocFailure,
                 faults.probes(serving::FaultSite::kEngineAllocFailure), 1);
  oracle.install_snapshot(dl.flat);
  serving::QueryResponse degraded = oracle.query(1, 2);
  std::printf("fault drill: index-less snapshot served level '%s' (%s)\n",
              serving::to_string(degraded.level),
              degraded.status == serving::ServeStatus::kOk ? "ok" : "not ok");
  if (degraded.level != serving::ServeLevel::kFlatDecode ||
      degraded.distance != graph::dijkstra(net, 1).dist[2]) {
    ++bad;
  }
  oracle.install_snapshot(dl.flat);  // restore the fast rung

  // 3. A stalled worker converts a tight deadline into a timeout verdict.
  faults.set_stall_duration(10ms);
  faults.arm_nth(serving::FaultSite::kWorkerStall,
                 faults.probes(serving::FaultSite::kWorkerStall), 1);
  serving::QueryResponse timed = oracle.query(2, 3, 500us);
  std::printf("fault drill: stalled worker verdict '%s'\n",
              serving::to_string(timed.status));
  if (timed.status != serving::ServeStatus::kTimeout) ++bad;

  // --- verification against the live graph ---------------------------------
  util::Rng vrng(seed + 5);
  int verified = 0;
  for (int i = 0; i < 5; ++i) {
    const auto s2 = static_cast<graph::VertexId>(vrng.next_below(n));
    const auto t2v = static_cast<graph::VertexId>(vrng.next_below(n));
    serving::QueryResponse r = oracle.query(s2, t2v);
    auto truth = graph::dijkstra(net, s2);
    const bool ok = r.status == serving::ServeStatus::kOk &&
                    r.distance == truth.dist[t2v];
    std::printf("  verify dist(%d -> %d) = %lld via level '%s'  [%s]\n", s2,
                t2v, static_cast<long long>(r.distance),
                serving::to_string(r.level), ok ? "exact" : "MISMATCH");
    ++verified;
    if (!ok) ++bad;
  }
  oracle.stop();
  std::printf("%d/%d verified queries exact; clean shutdown\n",
              verified - bad, verified);
  return bad == 0 ? 0 : 1;
}
