// Routing oracle: an ISP-style backbone answers latency queries from
// compact per-router labels, without any further communication.
//
//   ./routing_oracle [--n 400] [--k 3] [--queries 2000] [--seed 7]
//
// Scenario: a backbone network grown hierarchically (partial k-tree —
// MSJ19 report real router-level topologies have low treewidth), with
// asymmetric link latencies (directed arcs). After the one-time
// CONGEST-phase construction of the distance labeling (Theorem 2), any
// router can compute the exact latency to any other from the two labels
// alone — the decoder runs locally, no packets needed.
#include <chrono>
#include <cstdio>

#include "core/solver.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace lowtw;
  util::Flags flags(argc, argv);
  const int n = static_cast<int>(flags.get_int("n", 400));
  const int k = static_cast<int>(flags.get_int("k", 3));
  const int queries = static_cast<int>(flags.get_int("queries", 2000));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));

  util::Rng rng(seed);
  graph::Graph topo = graph::gen::partial_ktree(n, k, 0.7, rng);
  // Asymmetric latencies: 1..100 per direction (directed instance).
  graph::WeightedDigraph net = graph::gen::random_orientation(
      topo, /*both_prob=*/0.9, /*lo=*/1, /*hi=*/100, rng);
  std::printf("backbone: %d routers, %d directed links\n",
              net.num_vertices(), net.num_arcs());

  SolverOptions options;
  options.seed = seed;
  Solver solver(net, options);
  const auto& dl = solver.distance_labeling();
  std::printf("oracle construction: %.0f CONGEST rounds; label size max %zu "
              "entries (%zu bits) vs full table %d entries\n",
              dl.rounds, dl.max_label_entries, dl.max_label_bits,
              net.num_vertices());

  // Serve random queries from labels only; verify a sample against Dijkstra.
  auto t0 = std::chrono::steady_clock::now();
  std::uint64_t checksum = 0;
  std::vector<std::pair<graph::VertexId, graph::VertexId>> qs;
  for (int i = 0; i < queries; ++i) {
    qs.emplace_back(static_cast<graph::VertexId>(rng.next_below(n)),
                    static_cast<graph::VertexId>(rng.next_below(n)));
  }
  for (auto [s, t] : qs) {
    graph::Weight d = dl.labeling.distance(s, t);
    checksum += static_cast<std::uint64_t>(d & 0xffff);
  }
  auto t1 = std::chrono::steady_clock::now();
  double us = std::chrono::duration<double, std::micro>(t1 - t0).count();
  std::printf("%d queries in %.1f us (%.2f us/query), checksum %llu\n",
              queries, us, us / queries,
              static_cast<unsigned long long>(checksum));

  int verified = 0;
  int bad = 0;
  for (int i = 0; i < 5; ++i) {
    auto [s, t] = qs[static_cast<std::size_t>(i) * qs.size() / 5];
    auto truth = graph::dijkstra(net, s);
    graph::Weight d = dl.labeling.distance(s, t);
    bool ok = d == truth.dist[t];
    std::printf("  verify dist(%d -> %d) = %lld  [%s]\n", s, t,
                static_cast<long long>(d), ok ? "exact" : "MISMATCH");
    ++verified;
    if (!ok) ++bad;
  }
  std::printf("%d/%d verified queries exact\n", verified - bad, verified);
  return bad == 0 ? 0 : 1;
}
