// Quickstart: build a low-treewidth network, decompose it, and answer
// exact shortest-path queries from distance labels.
//
//   ./quickstart [--n 200] [--k 3] [--seed 1]
//
// Walks through the three layers of the library:
//   1. tree decomposition (Theorem 1) — width / depth / rounds;
//   2. distance labeling (Theorem 2) — label sizes;
//   3. SSSP by label flooding — verified against centralized Dijkstra.
#include <cstdio>

#include "core/solver.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace lowtw;
  util::Flags flags(argc, argv);
  const int n = static_cast<int>(flags.get_int("n", 200));
  const int k = static_cast<int>(flags.get_int("k", 3));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));

  util::Rng gen_rng(seed);
  graph::Graph g = graph::gen::partial_ktree(n, k, 0.6, gen_rng);
  std::printf("graph: n=%d m=%d (partial %d-tree, treewidth <= %d)\n",
              g.num_vertices(), g.num_edges(), k, k);

  SolverOptions options;
  options.seed = seed;
  Solver solver(g, options);
  std::printf("communication diameter D = %d\n", solver.diameter());

  // 1. Tree decomposition.
  const auto& td = solver.tree_decomposition();
  std::printf("tree decomposition: %d bags, width %d, depth %d, "
              "t-estimate %d, %.0f rounds\n",
              td.td.num_bags(), td.td.width(), td.td.depth(), td.t_used,
              td.rounds);
  if (auto err = td.td.validate(g)) {
    std::printf("INVALID decomposition: %s\n", err->c_str());
    return 1;
  }

  // 2. Distance labeling.
  const auto& dl = solver.distance_labeling();
  std::printf("distance labels: max %zu entries (%zu bits), mean %.1f "
              "entries, %.0f rounds\n",
              dl.max_label_entries, dl.max_label_bits,
              dl.labeling.mean_entries(), dl.rounds);

  // 3. SSSP from vertex 0, checked against Dijkstra.
  auto sssp = solver.sssp(0);
  auto truth = graph::dijkstra(solver.instance(), 0);
  int mismatches = 0;
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    if (sssp.dist[v] != truth.dist[v]) ++mismatches;
  }
  std::printf("SSSP from 0: %.0f rounds, %d/%d distances match Dijkstra\n",
              sssp.rounds, g.num_vertices() - mismatches, g.num_vertices());

  // A couple of point-to-point queries straight from labels.
  const auto& labeling = dl.labeling;
  for (graph::VertexId v : {n / 4, n / 2, n - 1}) {
    std::printf("  dist(0 -> %d) = %lld\n", v,
                static_cast<long long>(labeling.distance(0, v)));
  }

  std::printf("\n%s", solver.report().to_string().c_str());
  return mismatches == 0 ? 0 : 1;
}
