// Ring monitor: find the fastest failover loop (weighted girth) of a metro
// fiber network — redundant rings with cross-connects — using Theorem 5.
//
//   ./ring_monitor [--n 120] [--chords 6] [--seed 11]
//
// The girth of the latency-weighted topology is the round-trip time of the
// tightest protection loop; knowing it bounds failure-recovery time. The
// undirected computation uses the probabilistic count-1 walk reduction and
// is cross-checked against the centralized exact girth; the directed
// variant (asymmetric latencies) uses the plain label-exchange reduction.
#include <cstdio>

#include "core/solver.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace lowtw;
  util::Flags flags(argc, argv);
  const int n = static_cast<int>(flags.get_int("n", 120));
  const int chords = static_cast<int>(flags.get_int("chords", 6));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 11));

  util::Rng rng(seed);
  graph::Graph topo = graph::gen::cycle_with_chords(n, chords, rng);
  graph::WeightedDigraph net =
      graph::gen::random_symmetric_weights(topo, 1, 50, rng);
  std::printf("metro ring: %d nodes, %d fiber spans (+%d cross-connects)\n",
              n, topo.num_edges(), chords);

  // Undirected (symmetric latencies).
  SolverOptions options;
  options.seed = seed;
  options.girth.trials_per_scale = 8;
  Solver solver(net, options);
  auto res = solver.girth_undirected();
  graph::Weight truth = graph::exact_girth_undirected(net);
  std::printf("tightest protection loop: %lld ms RTT "
              "(%.0f rounds, %d labelings)  [exact: %lld — %s]\n",
              static_cast<long long>(res.girth), res.rounds, res.cdl_builds,
              static_cast<long long>(truth),
              res.girth == truth ? "match" : "upper bound");

  // Directed variant: asymmetric latencies per direction.
  graph::WeightedDigraph dnet(net.num_vertices());
  util::Rng drng(seed + 1);
  for (const graph::Arc& a : net.arcs()) {
    dnet.add_arc(a.tail, a.head, a.weight + drng.next_in(0, 10));
  }
  Solver dsolver(dnet, options);
  auto dres = dsolver.girth();
  graph::Weight dtruth = graph::exact_girth_directed(dnet);
  std::printf("directed loop (asymmetric latencies): %lld ms "
              "(%.0f rounds)  [exact: %lld — %s]\n",
              static_cast<long long>(dres.girth), dres.rounds,
              static_cast<long long>(dtruth),
              dres.girth == dtruth ? "match" : "MISMATCH");

  bool ok = res.girth >= truth && dres.girth == dtruth;
  return ok ? 0 : 1;
}
