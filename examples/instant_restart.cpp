// Instant-restart drill: write a frozen image, restart from it, prove
// bit-exactness — the executable CI runs as the kind-5 acceptance gate.
//
//   ./instant_restart [--n 400] [--k 3] [--seed 7] [--pairs 2000]
//                     [--image /tmp/lowtw-restart.img] [--filter]
//
// One oracle builds the snapshot the slow way (TD + labeling + freeze +
// transpose + filter), writes it as a kind-5 frozen image, and a second
// oracle cold-starts by mmapping that image — zero build work. Both then
// answer the same random query pairs; any divergence (from each other or
// from Dijkstra ground truth on a sample) exits nonzero. Prints the
// rebuild-vs-mmap wall times so the cold-start win is visible in the log.
#include <chrono>
#include <cstdio>
#include <string>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "serving/oracle.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace lowtw;
  using Clock = std::chrono::steady_clock;
  util::Flags flags(argc, argv);
  const int n = static_cast<int>(flags.get_int("n", 400));
  const int k = static_cast<int>(flags.get_int("k", 3));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
  const auto pairs = static_cast<std::size_t>(flags.get_int("pairs", 2000));
  const std::string image = flags.get_string("image", "/tmp/lowtw-restart.img");
  const bool filter = flags.get_bool("filter", true);

  util::Rng rng(seed);
  graph::Graph topo = graph::gen::partial_ktree(n, k, 0.7, rng);
  graph::WeightedDigraph net = graph::gen::random_orientation(
      topo, /*both_prob=*/0.9, /*lo=*/1, /*hi=*/100, rng);
  std::printf("instance: %d vertices, %d arcs\n", net.num_vertices(),
              net.num_arcs());

  serving::OracleOptions opts;
  opts.seed = seed;
  opts.filter.enabled = filter;

  serving::Oracle built(net, opts);
  const auto t0 = Clock::now();
  built.rebuild_snapshot();
  const auto rebuild_us = std::chrono::duration_cast<std::chrono::microseconds>(
                              Clock::now() - t0)
                              .count();
  if (!built.write_image(image)) {
    std::fprintf(stderr, "FAIL: write_image refused\n");
    return 1;
  }

  serving::Oracle restarted(net, opts);
  const auto t1 = Clock::now();
  if (!restarted.load_image(image)) {
    std::fprintf(stderr, "FAIL: load_image rejected a fresh image\n");
    return 1;
  }
  const auto load_us = std::chrono::duration_cast<std::chrono::microseconds>(
                           Clock::now() - t1)
                           .count();
  const serving::OracleStats rs = restarted.stats();
  std::printf("rebuild: %lld us;  mmap load: %lld us (%.1fx, source=%s)\n",
              static_cast<long long>(rebuild_us),
              static_cast<long long>(load_us),
              load_us > 0 ? static_cast<double>(rebuild_us) /
                                static_cast<double>(load_us)
                          : 0.0,
              serving::to_string(rs.snapshot_source));

  // Bit-exactness: every random pair must decode identically through the
  // rebuilt snapshot and the mmapped one; a sampled prefix is also checked
  // against Dijkstra ground truth.
  util::Rng qrng(seed ^ 0x5eed5eedULL);
  const auto nn = static_cast<std::uint64_t>(net.num_vertices());
  std::size_t truth_checked = 0;
  for (std::size_t i = 0; i < pairs; ++i) {
    const auto u = static_cast<graph::VertexId>(qrng.next_below(nn));
    const auto v = static_cast<graph::VertexId>(qrng.next_below(nn));
    const graph::Weight a = built.serve_now(u, v).distance;
    const graph::Weight b = restarted.serve_now(u, v).distance;
    if (a != b) {
      std::fprintf(stderr, "FAIL: pair (%d, %d): rebuilt=%lld mmapped=%lld\n",
                   u, v, static_cast<long long>(a), static_cast<long long>(b));
      return 1;
    }
    if (i < 32) {
      const graph::Weight truth = graph::dijkstra(net, u).dist[v];
      if (a != truth) {
        std::fprintf(stderr, "FAIL: pair (%d, %d): decoded=%lld truth=%lld\n",
                     u, v, static_cast<long long>(a),
                     static_cast<long long>(truth));
        return 1;
      }
      ++truth_checked;
    }
  }
  std::printf("bit-exact: %zu pairs (%zu vs Dijkstra), image %s\n", pairs,
              truth_checked, image.c_str());
  return 0;
}
