// Task assignment: maximize the number of worker-task pairs in a
// distributed compute cluster where eligibility is local (low-treewidth
// bipartite structure), using the exact distributed matching of Theorem 4.
//
//   ./task_assignment [--n 300] [--seed 3] [--faithful]
//
// Scenario: workers along an assembly line can take tasks at neighboring
// stations; two "floating" coordinators can take any even/odd station task
// (the apexed bipartite path family — treewidth <= 3, diameter <= 4, but a
// maximum matching of size Θ(n)). The distributed divide-and-conquer is
// compared against the Õ(s_max)-round sequential-augmentation baseline and
// certified optimal by a König vertex cover.
#include <cstdio>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "matching/baseline.hpp"
#include "matching/matching.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace lowtw;
  util::Flags flags(argc, argv);
  const int n = static_cast<int>(flags.get_int("n", 300));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 3));
  const bool faithful = flags.get_bool("faithful", false);

  graph::Graph g = graph::gen::apexed_bipartite_path(n);
  const int diameter = graph::exact_diameter(g);
  std::printf("cluster: %d stations + 2 coordinators, %d eligibility edges, "
              "D = %d\n",
              n, g.num_edges(), diameter);

  util::Rng rng(seed);
  primitives::RoundLedger ledger;
  primitives::Engine engine(
      primitives::EngineMode::kShortcutModel,
      primitives::CostModel{g.num_vertices(), diameter, 1.0}, &ledger);

  matching::MatchingParams params;
  params.mode = faithful ? matching::MatchingMode::kFaithful
                         : matching::MatchingMode::kFast;
  auto ours = matching::max_bipartite_matching(g, params, rng, engine);
  std::printf("distributed matching: size %d, %.0f rounds, "
              "%d augmentations over %d insertion steps, %d CDL builds, "
              "decomposition width %d\n",
              ours.matching.size, ours.rounds, ours.augmentations,
              ours.insertion_steps, ours.cdl_builds, ours.td_width);

  primitives::RoundLedger base_ledger;
  primitives::Engine base_engine(
      primitives::EngineMode::kShortcutModel,
      primitives::CostModel{g.num_vertices(), diameter, 1.0}, &base_ledger);
  auto base =
      matching::sequential_augmenting_matching(g, diameter, base_engine);
  std::printf("sequential baseline:  size %d, %.0f rounds, %d augmentations\n",
              base.matching.size, base.rounds, base.augmentations);

  // Optimality certificate: a vertex cover of equal size (König).
  auto hk = matching::hopcroft_karp(g);
  auto cover = matching::koenig_cover(g, hk);
  bool certified = ours.matching.size == hk.size &&
                   static_cast<int>(cover.size()) == hk.size &&
                   matching::is_vertex_cover(g, cover);
  std::printf("optimality: matching %d == König cover %zu  [%s]\n", hk.size,
              cover.size(), certified ? "certified" : "FAILED");

  // Show a few assignments.
  int shown = 0;
  for (graph::VertexId v = 0; v < g.num_vertices() && shown < 5; ++v) {
    if (ours.matching.mate[v] != graph::kNoVertex && v < ours.matching.mate[v]) {
      std::printf("  station %d <-> station %d\n", v, ours.matching.mate[v]);
      ++shown;
    }
  }
  return certified ? 0 : 1;
}
