// Transit planner: shortest routes under transfer rules — the stateful
// walk framework (Section 5 / Theorem 3) beyond plain distances.
//
//   ./transit_planner [--n 150] [--lines 4] [--seed 21]
//
// Scenario: a rail network where each track segment belongs to a line
// (edge label = line id). Riders dislike "ping-ponging": a route may never
// use two consecutive segments of the same line going through a transfer
// hub (the c-colored walk constraint of Example 1). The planner builds the
// constrained distance labeling once (CDL(C_col(c))) and then answers
// "fastest admissible route from A to B arriving on line L" queries from
// labels alone, plus reconstructs one concrete route (Corollary 1).
#include <cstdio>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "td/builder.hpp"
#include "util/flags.hpp"
#include "walks/cdl.hpp"

int main(int argc, char** argv) {
  using namespace lowtw;
  util::Flags flags(argc, argv);
  const int n = static_cast<int>(flags.get_int("n", 150));
  const int lines = static_cast<int>(flags.get_int("lines", 4));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 21));

  // Rail topology: a partial 2-tree (mostly corridors with junctions);
  // each edge gets a line id and a travel time.
  util::Rng rng(seed);
  graph::Graph topo = graph::gen::partial_ktree(n, 2, 0.7, rng);
  auto edges = topo.edges();
  std::vector<graph::Weight> time(edges.size());
  std::vector<std::int32_t> line(edges.size());
  for (std::size_t i = 0; i < edges.size(); ++i) {
    time[i] = rng.next_in(2, 15);
    line[i] = static_cast<std::int32_t>(rng.next_below(lines));
  }
  auto net = graph::WeightedDigraph::symmetric_from(topo, time, line);
  std::printf("rail network: %d stations, %zu segments, %d lines\n", n,
              edges.size(), lines);

  auto skel = net.skeleton();
  primitives::RoundLedger ledger;
  primitives::Engine engine(
      primitives::EngineMode::kShortcutModel,
      primitives::CostModel{n, graph::exact_diameter(skel), 1.0}, &ledger);

  auto td = td::build_hierarchy(skel, td::TdParams{}, rng, engine);
  walks::ColoredWalkConstraint no_pingpong(lines);
  auto cdl = walks::build_cdl(net, skel, td.hierarchy, no_pingpong, engine);
  std::printf("constrained labeling (|Q| = %d): %.0f CONGEST rounds, "
              "max label %zu entries\n",
              no_pingpong.num_states(), cdl.rounds, cdl.max_label_entries);

  // Query: fastest admissible route 0 -> n-1, any arrival line.
  graph::VertexId from = 0;
  auto to = static_cast<graph::VertexId>(n - 1);
  graph::Weight best = graph::kInfinity;
  int best_line = -1;
  for (int l = 0; l < lines; ++l) {
    graph::Weight d = cdl.distance(from, to, no_pingpong.color_state(l));
    if (d < best) {
      best = d;
      best_line = l;
    }
  }
  std::printf("fastest admissible route %d -> %d: %lld min, arriving on "
              "line %d\n",
              from, to, static_cast<long long>(best), best_line);

  // Reconstruct one concrete route (Corollary 1).
  std::vector<char> target(static_cast<std::size_t>(n), 0);
  target[to] = 1;
  auto walk = walks::shortest_constrained_walk(
      net, no_pingpong, from, target, no_pingpong.color_state(best_line),
      engine);
  if (!walk.has_value() || walk->length != best) {
    std::printf("route reconstruction FAILED\n");
    return 1;
  }
  std::printf("route (%zu segments): ", walk->arcs.size());
  graph::VertexId at = from;
  for (graph::EdgeId e : walk->arcs) {
    const auto& a = net.arc(e);
    std::printf("%d -[L%d]-> ", at, a.label);
    at = a.head;
  }
  std::printf("%d\n", at);

  // Sanity: the admissible route is never faster than the unconstrained
  // one, and both are exact.
  auto unconstrained = graph::dijkstra(net, from).dist[to];
  std::printf("unconstrained time: %lld min (constraint overhead: %lld)\n",
              static_cast<long long>(unconstrained),
              static_cast<long long>(best - unconstrained));
  return best >= unconstrained ? 0 : 1;
}
