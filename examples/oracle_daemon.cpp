// Distance-oracle daemon: the full serving stack on a wire.
//
//   ./oracle_daemon [--socket /tmp/lowtw-oracle.sock] [--n 400] [--k 3]
//                   [--workers 4] [--seed 7] [--selftest]
//                   [--dimacs net.gr] [--image snap.img]
//                   [--write-image snap.img] [--prefault]
//                   [--cache-capacity 65536] [--cache-shards 8]
//                   [--row-cache 4]
//
// Builds a low-treewidth instance (or ingests a real road network from a
// DIMACS .gr file via --dimacs), constructs the distance labeling once
// (the paper's CONGEST-phase preprocessing) — or skips the build entirely
// with --image, which mmaps a kind-5 frozen image written by a previous run
// (--write-image) and serves zero-copy out of the mapping; a corrupt image
// falls back to a fresh rebuild. Then starts the supervised multi-worker
// oracle and exposes the line protocol of serving::Daemon on a unix socket:
//
//   $ ./oracle_daemon --socket /tmp/oracle.sock &
//   $ printf 'Q 1 0 42\nSTATS\nQUIT\n' | nc -U /tmp/oracle.sock
//   A 1 ok batched-index 137 1
//   STATS admitted=1 ...
//   BYE
//
// SIGTERM/SIGINT drain gracefully: the handler only writes one byte to a
// self-pipe; the main thread wakes, stops the daemon (every connection
// finishes the frame batch it is serving), then drains the oracle so every
// admitted query is answered before exit.
//
// --selftest runs an in-process client instead of serving forever: it
// round-trips a handful of frames (including a malformed one) through the
// socket, prints the dialogue, and exits — the smoke path CI exercises.
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>

#include "graph/generators.hpp"
#include "graph/graph_io.hpp"
#include "serving/daemon.hpp"
#include "util/check.hpp"
#include "util/flags.hpp"

namespace {

int g_signal_pipe[2] = {-1, -1};

void on_signal(int) {
  const char b = 's';
  [[maybe_unused]] ssize_t n = ::write(g_signal_pipe[1], &b, 1);
}

// Minimal blocking client for --selftest: send one blob, read until the
// expected number of '\n'-framed replies arrived.
std::string roundtrip(const std::string& path, const std::string& request,
                      int expected_lines) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return "<connect failed>";
  }
  [[maybe_unused]] ssize_t w = ::write(fd, request.data(), request.size());
  std::string got;
  char chunk[4096];
  while (expected_lines > 0) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) break;
    for (ssize_t i = 0; i < n; ++i) {
      if (chunk[i] == '\n') --expected_lines;
    }
    got.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return got;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lowtw;
  util::Flags flags(argc, argv);
  const std::string socket_path =
      flags.get_string("socket", "/tmp/lowtw-oracle.sock");
  const int n = static_cast<int>(flags.get_int("n", 400));
  const int k = static_cast<int>(flags.get_int("k", 3));
  const int workers = static_cast<int>(flags.get_int("workers", 4));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
  const bool selftest = flags.get_bool("selftest", false);
  const std::string dimacs_path = flags.get_string("dimacs", "");
  const std::string image_path = flags.get_string("image", "");
  const std::string write_image_path = flags.get_string("write-image", "");
  // Serving-plane caches: --cache-capacity 0 turns the result cache off
  // entirely (no probes); --row-cache 0 disables pinned source-row reuse.
  const auto cache_capacity =
      static_cast<std::size_t>(flags.get_int("cache-capacity", 1 << 16));
  const int cache_shards = static_cast<int>(flags.get_int("cache-shards", 8));
  const auto row_cache =
      static_cast<std::size_t>(flags.get_int("row-cache", 4));
  const bool prefault = flags.get_bool("prefault", false);

  graph::WeightedDigraph net;
  if (!dimacs_path.empty()) {
    // Real-graph ingestion: stream a DIMACS .gr road network instead of the
    // synthetic partial k-tree (malformed files fail with a line number).
    try {
      net = graph::io::read_dimacs_gr_file(dimacs_path);
    } catch (const util::CheckFailure& e) {
      std::fprintf(stderr, "dimacs load failed: %s\n", e.what());
      return 1;
    }
  } else {
    util::Rng rng(seed);
    graph::Graph topo = graph::gen::partial_ktree(n, k, 0.7, rng);
    net = graph::gen::random_orientation(topo, /*both_prob=*/0.9, /*lo=*/1,
                                         /*hi=*/100, rng);
  }
  std::printf("instance: %d vertices, %d arcs\n", net.num_vertices(),
              net.num_arcs());

  serving::OracleOptions opts;
  opts.seed = seed;
  opts.pool.workers = workers;
  opts.cache.enabled = cache_capacity > 0;
  opts.cache.capacity = cache_capacity;
  opts.cache.shards = cache_shards;
  opts.row_cache_slots = row_cache;
  opts.prefault = prefault;
  serving::Oracle oracle(net, opts);
  // Instant restart: mmap the frozen image and serve straight out of the
  // mapping — no TD/labeling build. A missing or corrupt image is rejected
  // without installing anything, so fall back to the full rebuild.
  if (image_path.empty() || !oracle.load_image(image_path)) {
    if (!image_path.empty()) {
      std::fprintf(stderr, "image load failed, rebuilding: %s\n",
                   image_path.c_str());
    }
    oracle.rebuild_snapshot();
  }
  if (!write_image_path.empty()) {
    if (oracle.write_image(write_image_path)) {
      std::printf("wrote frozen image: %s\n", write_image_path.c_str());
    } else {
      std::fprintf(stderr, "image write failed (no indexed snapshot)\n");
    }
  }
  oracle.start();
  const serving::OracleStats boot = oracle.stats();
  std::printf("oracle: generation %llu, %d workers, snapshot %s in %llu us "
              "(prefault %llu us), cache %s\n",
              static_cast<unsigned long long>(oracle.generation()),
              oracle.num_workers(), serving::to_string(boot.snapshot_source),
              static_cast<unsigned long long>(boot.load_micros),
              static_cast<unsigned long long>(boot.prefault_micros),
              oracle.result_cache() != nullptr ? "on" : "off");

  serving::DaemonParams dparams;
  dparams.socket_path = socket_path;
  serving::Daemon daemon(oracle, dparams);
  if (!daemon.start()) {
    std::perror("daemon start");
    return 1;
  }
  std::printf("listening on %s\n", socket_path.c_str());

  if (selftest) {
    std::printf("%s",
                roundtrip(socket_path,
                          "PING\nQ 1 0 1\nQ 2 0 " + std::to_string(n - 1) +
                              "\nbogus frame\nSTATS\nQUIT\n",
                          6)
                    .c_str());
    daemon.stop();
    oracle.stop(/*drain=*/true);
    const serving::DaemonStats ds = daemon.stats();
    std::printf("selftest: %llu requests, %llu malformed rejected\n",
                static_cast<unsigned long long>(ds.requests),
                static_cast<unsigned long long>(ds.malformed));
    return 0;
  }

  // Signal plumbing: handlers must not touch the daemon (locks, joins);
  // they write a byte, the main thread does the teardown.
  if (::pipe(g_signal_pipe) != 0) {
    std::perror("pipe");
    return 1;
  }
  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);
  pollfd pfd{g_signal_pipe[0], POLLIN, 0};
  while (::poll(&pfd, 1, -1) < 0 && errno == EINTR) {
  }
  std::printf("signal received: draining\n");
  daemon.stop();
  oracle.stop(/*drain=*/true);
  const serving::OracleStats os = oracle.stats();
  const serving::DaemonStats ds = daemon.stats();
  std::printf("served %llu over %llu connections (%llu malformed, "
              "%llu disconnects); conservation: admitted=%llu == served+"
              "timeouts+failed=%llu\n",
              static_cast<unsigned long long>(ds.requests),
              static_cast<unsigned long long>(ds.connections),
              static_cast<unsigned long long>(ds.malformed),
              static_cast<unsigned long long>(ds.disconnects),
              static_cast<unsigned long long>(os.admitted),
              static_cast<unsigned long long>(
                  os.served_batched_index + os.served_flat +
                  os.served_dijkstra + os.timeouts + os.failed));
  return 0;
}
